#include "util/rss.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace pg::util {

namespace {

/// Reads one "<label>: <kB> kB" line from /proc/self/status; -1.0 when
/// the file or the label is absent (non-Linux, hardened /proc).
double proc_status_kb(const char* label) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return -1.0;
  const std::size_t label_len = std::strlen(label);
  char line[256];
  double kb = -1.0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, label, label_len) != 0 ||
        line[label_len] != ':')
      continue;
    long long value = 0;
    if (std::sscanf(line + label_len + 1, "%lld", &value) == 1)
      kb = static_cast<double>(value);
    break;
  }
  std::fclose(file);
  return kb;
}

double getrusage_peak_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // kB
#endif
#else
  return 0.0;
#endif
}

}  // namespace

double peak_rss_mb() {
  const double kb = proc_status_kb("VmHWM");
  return kb >= 0.0 ? kb / 1024.0 : getrusage_peak_mb();
}

double current_rss_mb() {
  const double kb = proc_status_kb("VmRSS");
  return kb >= 0.0 ? kb / 1024.0 : 0.0;
}

bool reset_peak_rss() {
  std::FILE* file = std::fopen("/proc/self/clear_refs", "w");
  if (file == nullptr) return false;
  // "5" resets the peak-RSS watermark only (not the referenced bits).
  const bool ok = std::fputs("5", file) >= 0;
  return (std::fclose(file) == 0) && ok;
}

}  // namespace pg::util
