// A small persistent worker pool for round-structured parallelism.
//
// The CONGEST simulator dispatches two short parallel regions per round
// (the per-node step phase and the delivery sweep); spawning threads per
// region would dominate rounds that take microseconds.  WorkerPool keeps
// its helper threads parked on a condition variable between regions, so a
// dispatch is one notify_all and a join is one counter wait — the same
// shape as Katana's ThreadPool/Barrier pair, reduced to the one fork-join
// primitive this codebase needs.
//
// `run(fn)` executes fn(t) for every worker index t in [0, workers):
// index 0 runs on the calling thread, indices 1..workers-1 on the parked
// helpers.  `run` returns only after every invocation has finished, so
// callers may treat it as a barrier.  The callable must not throw —
// callers that can fail capture their own std::exception_ptr per worker
// (the simulator does) and rethrow after the join.
//
// The pool is not fork-safe: a forked child must construct its own pool
// (the sweep runner's isolate mode builds fresh simulators in the child,
// so this falls out naturally).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace pg::util {

class WorkerPool {
 public:
  /// Spawns `workers - 1` helper threads (worker 0 is the caller of run).
  explicit WorkerPool(int workers);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool();

  int workers() const { return static_cast<int>(helpers_.size()) + 1; }

  /// Runs fn(0) on the calling thread and fn(t) on helper t for
  /// t = 1..workers-1, concurrently; returns after all invocations
  /// complete.  fn must not throw.
  void run(const std::function<void(int)>& fn);

 private:
  void helper_main(int index);

  std::mutex mutex_;
  std::condition_variable start_;
  std::condition_variable done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int outstanding_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> helpers_;
};

}  // namespace pg::util
