// Cooperative cancellation for long-running cell work.
//
// The sweep runner's per-cell watchdog cannot kill a thread; instead it
// flips an atomic token and relies on the code doing the work to notice.
// A worker installs the current cell's token into a thread-local slot
// (`cancel::Scope`), and every cancellation-aware loop — the CONGEST
// simulator's round loop, PowerView's truncated BFS, the centralized
// solvers' worklists, the branch-and-bound node counter — calls
// `cancel::poll()`, which throws `cancel::Cancelled` once the token is
// set.  The throw unwinds back to the runner, which records the cell as
// `status=timeout` and moves on.
//
// Cost when no token is installed (every path outside a budgeted sweep):
// one thread-local pointer load and a null check, so the hooks are safe
// to leave in release hot loops.  Poll sites are placed at loop heads
// whose single iteration is bounded (a round, a ball, a worklist pop),
// never inside per-edge inner loops.
#pragma once

#include <atomic>
#include <stdexcept>

namespace pg::cancel {

/// Thrown by poll() when the installed token has been set.  Deliberately
/// NOT derived from the contract-violation types: the runner must be able
/// to tell "the watchdog expired this cell" from "the cell failed".
class Cancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
inline thread_local const std::atomic<bool>* tl_token = nullptr;
}  // namespace detail

/// True iff a token is installed and has been set.
inline bool requested() {
  const std::atomic<bool>* token = detail::tl_token;
  return token != nullptr && token->load(std::memory_order_relaxed);
}

/// Throws Cancelled iff cancellation has been requested.
inline void poll() {
  if (requested())
    throw Cancelled("cancelled: cell budget exceeded");
}

/// Installs `token` as this thread's cancellation token for its lifetime,
/// restoring the previous one on destruction (scopes nest, though the
/// runner only ever needs one level).
class Scope {
 public:
  explicit Scope(const std::atomic<bool>* token) : prev_(detail::tl_token) {
    detail::tl_token = token;
  }
  ~Scope() { detail::tl_token = prev_; }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  const std::atomic<bool>* prev_;
};

}  // namespace pg::cancel
