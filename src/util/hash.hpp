// Small non-cryptographic hashing shared by the seed-mixing and
// report-fingerprinting code, so the constants live in exactly one place.
#pragma once

#include <cstdint>
#include <string_view>

namespace pg {

/// FNV-1a, 64-bit.
inline std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace pg
