// Read-only memory-mapped file view.
//
// `FileView` maps a whole file with PROT_READ and hands out the bytes as a
// span.  Clean read-only pages live in the OS page cache, so every process
// (and every `sweep --spawn` child) mapping the same file shares one
// physical copy — the property the file-backed scenario kind relies on to
// keep per-child peak RSS flat.  On platforms without mmap the view falls
// back to reading the file into an owned buffer; callers see the same
// interface either way.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace pg::util {

class FileView {
 public:
  FileView() = default;
  FileView(const FileView&) = delete;
  FileView& operator=(const FileView&) = delete;
  FileView(FileView&& other) noexcept { swap(other); }
  FileView& operator=(FileView&& other) noexcept {
    if (this != &other) {
      reset();
      swap(other);
    }
    return *this;
  }
  ~FileView() { reset(); }

  /// Maps `path` read-only.  Throws PreconditionViolation (exit 2 at the
  /// CLI boundary) when the file cannot be opened, stat'd, or mapped.
  static FileView map(const std::string& path);

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::span<const std::byte> bytes() const { return {data_, size_}; }
  const std::string& path() const { return path_; }
  bool mapped() const { return data_ != nullptr || size_ == 0; }

  /// Unmaps (or frees the fallback buffer) and returns to the empty state.
  void reset();

 private:
  void swap(FileView& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(path_, other.path_);
    std::swap(fallback_, other.fallback_);
    std::swap(is_mmap_, other.is_mmap_);
  }

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
  std::vector<std::byte> fallback_;  // used only when mmap is unavailable
  bool is_mmap_ = false;
};

}  // namespace pg::util
