// Resident-set-size introspection for the memory-diet instrumentation:
// sweep shards report their peak RSS in the (timing-gated) report meta,
// and the scenario benchmarks gate allocation/footprint regressions on
// it.  Linux reads /proc/self/status (VmHWM — resettable, so a bench can
// measure one iteration); elsewhere getrusage(RUSAGE_SELF) provides the
// process-lifetime peak and resets are no-ops.
#pragma once

namespace pg::util {

/// Peak resident set size of this process, in MiB (0.0 when the platform
/// offers no probe).  After reset_peak_rss() on Linux, the high-water
/// mark restarts from the *current* RSS.
double peak_rss_mb();

/// Current resident set size in MiB (0.0 when unavailable).
double current_rss_mb();

/// Resets the kernel's RSS high-water mark to the current RSS (Linux
/// /proc/self/clear_refs; silently a no-op elsewhere or when the kernel
/// denies the write).  Returns true iff the reset took effect.
bool reset_peak_rss();

}  // namespace pg::util
