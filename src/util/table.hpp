// Minimal fixed-width table printer used by the experiment benches so that
// every table/figure reproduction prints in a uniform, diffable format.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace pg {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row; each cell is already formatted.
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& out = std::cout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals.
std::string fmt(double value, int decimals = 3);

/// Prints a section banner used by benches ("== E4: ... ==").
void banner(const std::string& title, std::ostream& out = std::cout);

}  // namespace pg
