#include "util/file_view.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PG_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PG_HAS_MMAP 0
#endif

namespace pg::util {

FileView FileView::map(const std::string& path) {
  FileView fv;
  fv.path_ = path;
#if PG_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  PG_REQUIRE(fd >= 0, "cannot open '" + path + "': " + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    PG_REQUIRE(false, "cannot stat '" + path + "': " + std::strerror(err));
  }
  PG_REQUIRE(S_ISREG(st.st_mode) || (::close(fd), false),
             "'" + path + "' is not a regular file");
  fv.size_ = static_cast<std::size_t>(st.st_size);
  if (fv.size_ == 0) {
    ::close(fd);
    return fv;  // empty file: valid zero-length view, nothing to map
  }
  void* addr = ::mmap(nullptr, fv.size_, PROT_READ, MAP_SHARED, fd, 0);
  const int map_err = errno;
  ::close(fd);  // the mapping keeps the file alive; the fd is not needed
  PG_REQUIRE(addr != MAP_FAILED,
             "cannot mmap '" + path + "': " + std::strerror(map_err));
  fv.data_ = static_cast<const std::byte*>(addr);
  fv.is_mmap_ = true;
#else
  std::ifstream in(path, std::ios::binary);
  PG_REQUIRE(static_cast<bool>(in), "cannot open '" + path + "'");
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  PG_REQUIRE(end >= 0, "cannot determine size of '" + path + "'");
  fv.size_ = static_cast<std::size_t>(end);
  fv.fallback_.resize(fv.size_);
  in.seekg(0, std::ios::beg);
  if (fv.size_ > 0) {
    in.read(reinterpret_cast<char*>(fv.fallback_.data()),
            static_cast<std::streamsize>(fv.size_));
    PG_REQUIRE(static_cast<bool>(in), "short read from '" + path + "'");
  }
  fv.data_ = fv.fallback_.data();
#endif
  return fv;
}

void FileView::reset() {
#if PG_HAS_MMAP
  if (is_mmap_ && data_ != nullptr)
    ::munmap(const_cast<std::byte*>(data_), size_);
#endif
  data_ = nullptr;
  size_ = 0;
  is_mmap_ = false;
  path_.clear();
  fallback_.clear();
  fallback_.shrink_to_fit();
}

}  // namespace pg::util
