// Dynamic fixed-capacity bitset used by the exact solvers, where adjacency
// and coverage sets over a few thousand vertices must support fast
// union / intersection / subset tests.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace pg {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }

  void set(std::size_t i) {
    PG_REQUIRE(i < bits_, "bit index out of range");
    words_[i >> 6] |= (1ull << (i & 63));
  }
  void reset(std::size_t i) {
    PG_REQUIRE(i < bits_, "bit index out of range");
    words_[i >> 6] &= ~(1ull << (i & 63));
  }
  bool test(std::size_t i) const {
    PG_REQUIRE(i < bits_, "bit index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  std::size_t count() const {
    std::size_t total = 0;
    for (auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
    return total;
  }

  bool any() const {
    for (auto w : words_)
      if (w != 0) return true;
    return false;
  }
  bool none() const { return !any(); }

  Bitset& operator|=(const Bitset& other) {
    PG_REQUIRE(bits_ == other.bits_, "bitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }
  Bitset& operator&=(const Bitset& other) {
    PG_REQUIRE(bits_ == other.bits_, "bitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }
  Bitset& subtract(const Bitset& other) {  // *this &= ~other
    PG_REQUIRE(bits_ == other.bits_, "bitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] &= ~other.words_[i];
    return *this;
  }

  /// Number of set bits shared with `other`.
  std::size_t intersection_count(const Bitset& other) const {
    PG_REQUIRE(bits_ == other.bits_, "bitset size mismatch");
    std::size_t total = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
      total += static_cast<std::size_t>(
          std::popcount(words_[i] & other.words_[i]));
    return total;
  }

  /// Number of set bits of *this not present in `other`.
  std::size_t difference_count(const Bitset& other) const {
    PG_REQUIRE(bits_ == other.bits_, "bitset size mismatch");
    std::size_t total = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
      total += static_cast<std::size_t>(
          std::popcount(words_[i] & ~other.words_[i]));
    return total;
  }

  /// true iff every bit of *this is also set in `other`.
  bool is_subset_of(const Bitset& other) const {
    PG_REQUIRE(bits_ == other.bits_, "bitset size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~other.words_[i]) return false;
    return true;
  }

  bool operator==(const Bitset& other) const = default;

  /// Index of the lowest set bit, or size() when empty.
  std::size_t first_set() const {
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] != 0)
        return (i << 6) + static_cast<std::size_t>(std::countr_zero(words_[i]));
    return bits_;
  }

  /// Calls fn(index) for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn((i << 6) + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pg
