#include "core/gr_mvc.hpp"

#include <cmath>
#include <deque>

#include "graph/ops.hpp"
#include "graph/power.hpp"
#include "solvers/exact_vc.hpp"

namespace pg::core {

using graph::Graph;
using graph::VertexId;
using graph::VertexSet;

namespace {

/// Vertices within distance `radius` of `center`, excluding it.
std::vector<VertexId> ball_around(const Graph& g, VertexId center,
                                  int radius) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::deque<VertexId> queue{center};
  dist[static_cast<std::size_t>(center)] = 0;
  std::vector<VertexId> ball;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    if (dist[static_cast<std::size_t>(u)] == radius) continue;
    for (VertexId w : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(w)] != -1) continue;
      dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
      ball.push_back(w);
      queue.push_back(w);
    }
  }
  return ball;
}

}  // namespace

GrMvcResult solve_gr_mvc(const Graph& g, int r, double epsilon,
                         std::int64_t exact_node_budget) {
  PG_REQUIRE(r >= 2, "the ball structure needs r >= 2");
  PG_REQUIRE(epsilon > 0 && epsilon <= 1, "epsilon must lie in (0, 1]");
  const int l = static_cast<int>(std::ceil(1.0 / epsilon));
  const int radius = r / 2;

  GrMvcResult result;
  result.cover = VertexSet(g.num_vertices());
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<bool> in_r(n, true);

  // Phase 1: while some ball B_⌊r/2⌋(c) holds more than l uncovered
  // vertices, cover the whole ball.  It is a clique of G^r, so any optimal
  // solution pays at least |ball ∩ R| - 1 there (the Lemma 5 charge).
  bool progress = true;
  while (progress) {
    progress = false;
    for (VertexId c = 0; c < g.num_vertices(); ++c) {
      const auto ball = ball_around(g, c, radius);
      std::vector<VertexId> active;
      for (VertexId v : ball)
        if (in_r[static_cast<std::size_t>(v)]) active.push_back(v);
      if (static_cast<int>(active.size()) <= l) continue;
      for (VertexId v : active) {
        in_r[static_cast<std::size_t>(v)] = false;
        result.cover.insert(v);
      }
      ++result.centers;
      progress = true;
    }
  }
  result.phase1_size = result.cover.size();

  // Phase 2: solve the remainder exactly.  Every ball now holds at most l
  // uncovered vertices, so the remainder of G^r is sparse.
  const Graph power = graph::power(g, r);
  std::vector<VertexId> remainder;
  for (std::size_t v = 0; v < n; ++v)
    if (in_r[v]) remainder.push_back(static_cast<VertexId>(v));
  result.remainder_size = remainder.size();
  const auto induced = graph::induced_subgraph(power, remainder);
  const auto exact = solvers::solve_mvc(induced.graph, exact_node_budget);
  result.remainder_optimal = exact.optimal;
  for (VertexId local : exact.solution.to_vector())
    result.cover.insert(induced.to_original[static_cast<std::size_t>(local)]);

  PG_CHECK(graph::is_vertex_cover(power, result.cover),
           "G^r ball cover is not a vertex cover");
  return result;
}

}  // namespace pg::core
