#include "core/gr_mvc.hpp"

#include <cmath>

#include "core/solver_util.hpp"
#include "graph/ops.hpp"
#include "graph/power_view.hpp"
#include "solvers/exact_vc.hpp"
#include "solvers/greedy.hpp"

namespace pg::core {

using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexSet;

namespace {

/// Solves MVC on one remainder component (a subgraph of the induced power
/// graph), exactly when small enough and within budget, by local ratio
/// otherwise.  Returns the component's cover in component-local ids.
VertexSet solve_component(GraphView comp, VertexId max_exact,
                          std::int64_t& budget, bool& optimal) {
  if (comp.num_vertices() > max_exact || budget <= 0) {
    optimal = false;
    const graph::VertexWeights unit(comp.num_vertices(), 1);
    return solvers::local_ratio_mwvc(comp, unit);
  }
  const auto exact =
      solvers::solve_mvc(comp, component_budget(comp.num_vertices(), budget));
  budget -= exact.nodes_explored;
  if (!exact.optimal) optimal = false;
  return exact.solution;
}

}  // namespace

GrMvcResult solve_gr_mvc(GraphView g, int r, double epsilon,
                         std::int64_t exact_node_budget,
                         VertexId max_exact_component) {
  PG_REQUIRE(r >= 2, "the ball structure needs r >= 2");
  PG_REQUIRE(epsilon > 0 && epsilon <= 1, "epsilon must lie in (0, 1]");
  const int l = static_cast<int>(std::ceil(1.0 / epsilon));
  const int radius = r / 2;

  GrMvcResult result;
  result.cover = VertexSet(g.num_vertices());
  const VertexId n = g.num_vertices();
  const auto un = static_cast<std::size_t>(n);
  std::vector<bool> in_r(un, true);
  graph::PowerView view(g, r);

  // Phase 1, worklist form: maintain active[c] = |B_radius(c) \ {c} ∩ R|
  // exactly, decrementing it for every ball that loses a covered vertex
  // (dist(c, v) <= radius is symmetric, so the balls containing v are the
  // ball around v).  Counts only ever decrease, so a single ascending scan
  // that covers every ball still holding more than l uncovered vertices is
  // equivalent to the seed's repeated full re-scan loop — each ball is a
  // clique of G^r, the Lemma 5 charge — at O(n + |E(G^radius)|) total
  // instead of O(passes × n × BFS).
  std::vector<std::int32_t> active(un, 0);
  for (VertexId c = 0; c < n; ++c) {
    std::int32_t count = 0;
    view.for_each_in_ball(c, radius, [&](VertexId) { ++count; });
    active[static_cast<std::size_t>(c)] = count;
  }
  std::vector<VertexId> ball;
  for (VertexId c = 0; c < n; ++c) {
    if (active[static_cast<std::size_t>(c)] <= l) continue;
    ball.clear();
    view.for_each_in_ball(c, radius, [&](VertexId v) {
      if (in_r[static_cast<std::size_t>(v)]) ball.push_back(v);
    });
    for (VertexId v : ball) {
      in_r[static_cast<std::size_t>(v)] = false;
      result.cover.insert(v);
      view.for_each_in_ball(v, radius, [&](VertexId w) {
        --active[static_cast<std::size_t>(w)];
      });
    }
    ++result.centers;
  }
  result.phase1_size = result.cover.size();

  // Phase 2: solve the remainder.  Only the remainder-induced power
  // subgraph is ever built (truncated BFS from remainder vertices) — the
  // full G^r is never materialized on this path.  The induced graph
  // splits into components; each is solved exactly under the node budget
  // when small, by the local-ratio 2-approximation otherwise
  // (remainder_optimal reports which happened, as with a budget abort).
  std::vector<VertexId> remainder;
  for (std::size_t v = 0; v < un; ++v)
    if (in_r[v]) remainder.push_back(static_cast<VertexId>(v));
  result.remainder_size = remainder.size();
  const auto induced = graph::induced_power_subgraph(g, r, remainder);
  std::int64_t budget = exact_node_budget;
  const auto comps = graph::connected_components(induced.graph);
  if (comps.count <= 1) {
    const VertexSet cover = solve_component(
        induced.graph, max_exact_component, budget, result.remainder_optimal);
    for (VertexId local : cover.to_vector())
      result.cover.insert(
          induced.to_original[static_cast<std::size_t>(local)]);
  } else {
    std::vector<std::vector<VertexId>> members(
        static_cast<std::size_t>(comps.count));
    for (VertexId v = 0; v < induced.graph.num_vertices(); ++v)
      members[static_cast<std::size_t>(
                  comps.component[static_cast<std::size_t>(v)])]
          .push_back(v);
    for (const std::vector<VertexId>& comp_vertices : members) {
      const auto comp =
          graph::induced_subgraph(induced.graph, comp_vertices);
      const VertexSet cover = solve_component(
          comp.graph, max_exact_component, budget, result.remainder_optimal);
      for (VertexId local : cover.to_vector())
        result.cover.insert(induced.to_original[static_cast<std::size_t>(
            comp.to_original[static_cast<std::size_t>(local)])]);
    }
  }

  PG_CHECK(graph::is_vertex_cover_power(g, r, result.cover),
           "G^r ball cover is not a vertex cover");
  return result;
}

}  // namespace pg::core
