#include "core/naive.hpp"

#include "congest/primitives.hpp"
#include "graph/ops.hpp"
#include "graph/power.hpp"
#include "solvers/exact_ds.hpp"
#include "solvers/exact_vc.hpp"

namespace pg::core {

using congest::Network;
using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexSet;

NaiveResult solve_naively_in_congest(GraphView g, NaiveProblem problem,
                                     std::int64_t exact_node_budget) {
  Network net(g);
  return solve_naively_in_congest(net, problem, exact_node_budget);
}

NaiveResult solve_naively_in_congest(Network& net, NaiveProblem problem,
                                     std::int64_t exact_node_budget) {
  net.reset();
  GraphView g = net.topology();
  PG_REQUIRE(graph::is_connected(g), "the baseline assumes a connected graph");
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  NaiveResult result;
  result.solution = VertexSet(g.num_vertices());
  if (n == 0) return result;
  if (n == 1) {
    if (problem == NaiveProblem::kMdsOnSquare) result.solution.insert(0);
    return result;
  }

  const congest::NodeId leader = congest::elect_min_id_leader(net);
  const congest::BfsTree tree = congest::build_bfs_tree(net, leader);

  // Every node ships each incident edge once (the lower endpoint reports).
  std::vector<std::vector<std::uint64_t>> tokens(n);
  g.for_each_edge([&](VertexId u, VertexId v) {
    tokens[static_cast<std::size_t>(u)].push_back(
        static_cast<std::uint64_t>(u) * n + static_cast<std::uint64_t>(v));
  });
  const auto raw = congest::upcast_tokens(net, tree, std::move(tokens));

  // Leader-local: rebuild G, square it, solve exactly.
  graph::GraphBuilder builder(g.num_vertices());
  for (std::uint64_t token : raw)
    builder.add_edge(static_cast<VertexId>(token / n),
                     static_cast<VertexId>(token % n));
  const Graph assembled = std::move(builder).build();
  PG_CHECK(assembled.num_edges() == g.num_edges(),
           "leader reassembled a different graph");
  const Graph square = graph::square(assembled);

  VertexSet chosen(g.num_vertices());
  if (problem == NaiveProblem::kMvcOnSquare) {
    const auto exact = solvers::solve_mvc(square, exact_node_budget);
    result.optimal = exact.optimal;
    chosen = exact.solution;
  } else {
    const auto exact = solvers::solve_mds(square, exact_node_budget);
    result.optimal = exact.optimal;
    chosen = exact.solution;
  }

  std::vector<std::uint64_t> answer;
  for (VertexId v : chosen.to_vector())
    answer.push_back(static_cast<std::uint64_t>(v));
  const auto received = congest::downcast_tokens(net, tree, answer);
  for (std::size_t v = 0; v < n; ++v)
    for (std::uint64_t token : received[v])
      if (token == v) result.solution.insert(static_cast<VertexId>(v));

  result.stats = net.stats();
  return result;
}

}  // namespace pg::core
