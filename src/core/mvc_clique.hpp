// CONGESTED CLIQUE algorithms for (1+ε)-approximate G^2-MVC (Section 3.3).
//
//  * Corollary 10 (deterministic): run Phase I exactly as in Algorithm 1
//    (messages only along G edges are trivially legal in the clique), then
//    exploit all-to-all bandwidth to ship F straight to the leader in
//    O(1/ε) rounds — O(εn + 1/ε) rounds total.
//
//  * Theorem 11 (randomized): replace Phase I with the voting scheme — a
//    candidate c (with d_R(c) > 8/ε + 2) draws r_c ∈ [n^4]; each R-vertex
//    votes for its highest-r_c candidate neighbor; candidates winning at
//    least d_R(c)/8 votes take their whole remaining neighborhood.  The
//    potential Φ = Σ_c d_R(c) drops by a constant factor per phase in
//    expectation (Claim 1), giving O(log n) phases w.h.p., then O(1/ε)
//    rounds of learning — O(log n + 1/ε) rounds total.
#pragma once

#include <cstdint>

#include "clique/clique.hpp"
#include "graph/cover.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace pg::core {

struct MvcCliqueConfig {
  double epsilon = 0.5;
  bool leader_exact = true;  // exact VC of H at the leader (else 5/3-approx)
  std::int64_t exact_node_budget = 50'000'000;
};

struct MvcCliqueResult {
  graph::VertexSet cover;
  clique::RoundStats stats;
  int phases = 0;                 // Phase I iterations / voting phases
  std::size_t phase1_cover_size = 0;
  std::size_t f_edge_count = 0;
  bool leader_solution_optimal = true;
};

/// Corollary 10: deterministic, O(εn + 1/ε) rounds.
MvcCliqueResult solve_g2_mvc_clique_deterministic(
    graph::GraphView g, const MvcCliqueConfig& config = {});

/// Theorem 11: randomized voting, O(log n + 1/ε) rounds w.h.p.
MvcCliqueResult solve_g2_mvc_clique_randomized(
    graph::GraphView g, Rng& rng, const MvcCliqueConfig& config = {});

}  // namespace pg::core
