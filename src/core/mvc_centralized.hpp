// Theorem 12 / Algorithm 2: a centralized polynomial-time 5/3-approximation
// for minimum vertex cover on G^2.
//
// Three local-ratio parts:
//   part 1 — repeatedly take whole triangles (pay 3, OPT pays >= 2);
//   part 2 — resolve vertices of degree <= 3 with the hand-crafted rules of
//            the paper (pay {1,3,5}, OPT pays {1,2,3});
//   part 3 — 2-approximate the (now min-degree-4, triangle-free) rest via a
//            maximal matching.
// The 5/3 bound follows because part 1 is large relative to part 3
// (Lemma 14: s1 >= (3/2)|V_R'|), letting the sloppy part-3 factor be
// amortized (proof of Theorem 12).
#pragma once

#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace pg::core {

struct LocalRatioParts {
  std::size_t s1 = 0;  // vertices taken by the triangle part
  std::size_t s2 = 0;  // vertices taken by the low-degree part
  std::size_t s3 = 0;  // vertices taken by the matching part
};

/// Runs Algorithm 2 on `h` — the graph whose edges must be covered.  The
/// 5/3 guarantee of Theorem 12 is proven when `h` is the square of some
/// graph; the algorithm itself is well-defined (and a valid <=2-approx) on
/// any graph.
graph::VertexSet five_thirds_cover(graph::GraphView h,
                                   LocalRatioParts* parts = nullptr);

/// Convenience wrapper: squares `g` and covers the square (the Theorem 12
/// setting; the returned set is a vertex cover of G^2).
graph::VertexSet five_thirds_mvc_of_square(graph::GraphView g,
                                           LocalRatioParts* parts = nullptr);

}  // namespace pg::core
