// Lemma 29: randomized 2-hop cardinality estimation in CONGEST.
//
// Every member vertex draws r independent Exp(1) variables; the minimum of
// the j-th variables over N^2[v] is Exp(d_v) where d_v = |N^2[v] ∩ U|, so
// d_v is estimated by r / Σ_j min_j (Cramér concentration, Lemma 30).
// Each sample costs two broadcast rounds (1-hop min, then 2-hop min).
// Values are quantized to fixed point so a sample fits the O(log n)
// bandwidth — the paper's "O(log n) bits of precision suffice".
#pragma once

#include <vector>

#include "congest/network.hpp"
#include "util/rng.hpp"

namespace pg::core {

struct EstimateResult {
  std::vector<double> estimate;   // per vertex: ~|N^2[v] ∩ U|; 0 if none
  std::int64_t rounds_used = 0;
  int samples = 0;
};

/// Estimates |N^2[v] ∩ U| for every v, where U = {u : membership[u]}.
/// `samples` <= 0 selects the default 3·⌈log2 n⌉ + 8.
EstimateResult estimate_two_hop_counts(congest::Network& net,
                                       const std::vector<bool>& membership,
                                       Rng& rng, int samples = 0);

}  // namespace pg::core
