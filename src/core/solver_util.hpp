// Small helpers shared by the paper's solver implementations.  Each has
// a semantics contract another implementation mirrors (the CONGEST and
// centralized Theorem 7 paths must bucket weights identically; the two
// G^r exact phases must slice budgets identically), so there is exactly
// one definition.
#pragma once

#include <algorithm>
#include <cstdint>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace pg::core {

/// Theorem 7's weight-scale class index: the i with
/// w_min·2^i <= w < w_min·2^{i+1}.  The loop condition is phrased
/// divide-side — exactly equivalent for integers — so `low` never
/// multiplies past the int64 range whatever w is.
inline int weight_class(graph::Weight w_min, graph::Weight w) {
  PG_CHECK(w >= w_min && w_min > 0, "weight outside class range");
  int i = 0;
  graph::Weight low = w_min;
  while (low <= w / 2) {
    low *= 2;
    ++i;
  }
  return i;
}

/// Node budget for one remainder component of a G^r exact phase: small
/// components (where seed behavior must be preserved bit for bit) may
/// spend the whole remaining budget, larger ones get a size-scaled slice
/// so a single stubborn component cannot burn minutes before giving up.
inline std::int64_t component_budget(graph::VertexId comp_size,
                                     std::int64_t remaining) {
  if (comp_size <= 64) return remaining;
  return std::min<std::int64_t>(
      remaining, std::max<std::int64_t>(50'000, 64'000'000 / comp_size));
}

}  // namespace pg::core
