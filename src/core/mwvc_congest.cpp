#include "core/mwvc_congest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "congest/primitives.hpp"
#include "core/solver_util.hpp"
#include "graph/matching.hpp"
#include "graph/ops.hpp"
#include "solvers/exact_vc.hpp"
#include "solvers/greedy.hpp"

namespace pg::core {

using congest::Incoming;
using congest::Message;
using congest::Network;
using congest::NodeId;
using congest::NodeView;
using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexSet;
using graph::VertexWeights;
using graph::Weight;

namespace {

constexpr std::uint8_t kWeight = 11;   // field 0: sender's weight (once)
constexpr std::uint8_t kStatus = 12;   // field 0: 1 iff in R
constexpr std::uint8_t kCandidate = 13;
constexpr std::uint8_t kMaxCand = 14;  // field 0: 1-hop max candidate id
constexpr std::uint8_t kSelect = 15;   // fields: class index i, w_min(c)
constexpr std::uint8_t kUStatus = 16;  // field 0: 1 iff in U

}  // namespace

MwvcCongestResult solve_g2_mwvc_congest(GraphView g, const VertexWeights& w,
                                        const MwvcCongestConfig& config) {
  Network net(g);
  return solve_g2_mwvc_congest(net, w, config);
}

MwvcCongestResult solve_g2_mwvc_congest(Network& net, const VertexWeights& w,
                                        const MwvcCongestConfig& config) {
  net.reset();
  GraphView g = net.topology();
  PG_REQUIRE(config.epsilon > 0, "epsilon must be positive");
  PG_REQUIRE(w.size() == g.num_vertices(), "weights/graph size mismatch");
  PG_REQUIRE(graph::is_connected(g), "Theorem 7 assumes a connected network");
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const Weight max_weight = static_cast<Weight>(n) * static_cast<Weight>(n) *
                            static_cast<Weight>(n) * static_cast<Weight>(n);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    PG_REQUIRE(w[v] >= 0 && w[v] <= std::max<Weight>(max_weight, 16),
               "weights must fit in O(log n) bits (<= n^4)");

  const int l = static_cast<int>(std::ceil(1.0 / config.epsilon));

  MwvcCongestResult result;
  result.cover = VertexSet(g.num_vertices());
  result.epsilon_inverse = l;

  // Byte flags, not vector<bool>: nodes write their own entry from inside
  // the (possibly parallel) rounds, and vector<bool> packs 64 nodes per
  // word.  Cover joins land in a per-node flag and fold into the shared
  // VertexSet between rounds.
  std::vector<char> in_r(n, 1);
  std::vector<char> joined(n, 0);
  auto fold_joins = [&] {
    for (std::size_t v = 0; v < n; ++v)
      if (joined[v] != 0) {
        result.cover.insert(static_cast<VertexId>(v));
        result.phase1_cover_weight += w[static_cast<VertexId>(v)];
        joined[v] = 0;
      }
  };
  // Zero-weight vertices enter the cover for free.
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (w[v] == 0) {
      in_r[static_cast<std::size_t>(v)] = 0;
      result.cover.insert(v);
    }

  // Round 0: announce weights; every node caches its neighbors' weights.
  std::vector<std::map<NodeId, Weight>> nbr_weight(n);
  std::vector<Weight> w_min(n, 0);  // min weight over the *original* N(v)
  net.round([&](NodeView& node) {
    node.broadcast(Message{kWeight, {w[node.id()]}});
  });
  net.round([&](NodeView& node) {
    const auto me = static_cast<std::size_t>(node.id());
    Weight lowest = 0;
    for (const Incoming& in : node.inbox()) {
      if (in.msg.kind != kWeight || in.msg.num_fields < 1) continue;
      const Weight wt = in.msg.at(0);
      nbr_weight[me][in.from] = wt;
      if (wt > 0 && (lowest == 0 || wt < lowest)) lowest = wt;
    }
    w_min[me] = lowest;  // 0 means "no positive-weight neighbor"
  });

  std::vector<char> is_candidate(n, 0);
  std::vector<int> chosen_class(n, -1);
  std::vector<NodeId> max1(n, -1);
  std::vector<std::map<NodeId, bool>> nbr_in_r(n);

  bool any_candidate = true;
  while (any_candidate) {
    // Round 1: apply selections, announce R status.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      for (const Incoming& in : node.inbox()) {
        if (in.msg.kind != kSelect || in.msg.num_fields < 2 || in_r[me] == 0)
          continue;
        const int cls = static_cast<int>(in.msg.at(0));
        const Weight wmin = in.msg.at(1);
        // Corrupted payloads can carry any (class, w_min) pair; reject
        // combinations whose shifted class bounds would overflow.  Identity
        // for legal announcements, whose w_min·2^{cls+1} stays within the
        // weight cap enforced on entry.
        if (cls < 0 || cls > 62 || wmin <= 0 ||
            wmin > (std::numeric_limits<Weight>::max() >> (cls + 1)))
          continue;
        const Weight low = wmin << cls;
        if (w[node.id()] >= low && w[node.id()] < low * 2) {
          in_r[me] = 0;
          joined[me] = 1;
        }
      }
      node.broadcast(Message{kStatus, {in_r[me] != 0 ? 1 : 0}});
    });
    fold_joins();

    // Round 2: evaluate the per-class center condition.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kStatus && in.msg.num_fields >= 1)
          nbr_in_r[me][in.from] = in.msg.at(0) == 1;

      is_candidate[me] = 0;
      chosen_class[me] = -1;
      if (w_min[me] > 0) {
        // Accumulate W_i and w*_i over active neighbors.
        std::map<int, std::pair<Weight, Weight>> stats;  // i -> (sum, max)
        for (const auto& [nbr, active] : nbr_in_r[me]) {
          if (!active) continue;
          const Weight wt = nbr_weight[me][nbr];
          if (wt <= 0) continue;
          const int i = weight_class(w_min[me], wt);
          auto& [sum, mx] = stats[i];
          sum += wt;
          mx = std::max(mx, wt);
        }
        for (const auto& [i, sm] : stats) {
          const auto& [sum, mx] = sm;
          if (static_cast<Weight>(l + 1) * mx <= sum) {
            is_candidate[me] = 1;
            chosen_class[me] = i;
            break;
          }
        }
      }
      if (is_candidate[me] != 0) node.broadcast(Message{kCandidate, {}});
    });
    // Derived after the barrier instead of set from inside the step: many
    // nodes writing one shared bool is a data race even when every write
    // stores the same value.
    any_candidate = std::any_of(is_candidate.begin(), is_candidate.end(),
                                [](char c) { return c != 0; });
    if (!any_candidate) break;

    // Round 3: 1-hop max candidate id.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      NodeId best = is_candidate[me] != 0 ? node.id() : -1;
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kCandidate) best = std::max(best, in.from);
      max1[me] = best;
      node.broadcast(Message{kMaxCand, {best}});
    });

    // Round 4: 2-hop max; winners announce (class, w_min).
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      NodeId best = max1[me];
      // Guard + clamp: a corrupted out-of-range id re-broadcast below would
      // blow the bandwidth check at small n.  Identity fault-free.
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kMaxCand && in.msg.num_fields >= 1)
          best = std::max(best, static_cast<NodeId>(std::clamp<std::int64_t>(
                                    in.msg.at(0), -1,
                                    static_cast<std::int64_t>(n) - 1)));
      if (is_candidate[me] != 0 && best == node.id())
        node.broadcast(Message{
            kSelect, {chosen_class[me], w_min[me]}});
    });
    ++result.iterations;
  }
  result.phase1_rounds = net.stats().rounds;

  // ---------------------------------------------------------- Phase II ---
  std::vector<char> in_u(in_r);
  std::vector<std::vector<std::uint64_t>> tokens(n);
  // Weight tokens pack (v, w(v)) as v·base + w.  The base must cover the
  // *actual* maximum weight only — the old choice of n^4+1 (the cap, not
  // the maximum) silently overflowed v·base for n >= ~6600 and corrupted
  // the leader's reconstruction of H; deriving the base from the weights
  // in hand keeps tokens minimal, and the explicit range checks below
  // turn any remaining impossibility into a clear error.
  Weight w_max = 1;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    w_max = std::max(w_max, w[v]);
  const std::uint64_t weight_base = static_cast<std::uint64_t>(w_max) + 1;
  PG_REQUIRE(weight_base <= (std::uint64_t{1} << 62) / std::max<std::size_t>(n, 1),
             "weights too large to token-encode at this n");
  PG_REQUIRE(n <= (std::size_t{1} << 30),
             "n too large for the leader's edge-token encoding");
  net.round([&](NodeView& node) {
    const auto me = static_cast<std::size_t>(node.id());
    node.broadcast(Message{kUStatus, {in_u[me] != 0 ? 1 : 0}});
  });
  net.round([&](NodeView& node) {
    const auto me = static_cast<std::size_t>(node.id());
    for (const Incoming& in : node.inbox()) {
      if (in.msg.kind != kUStatus || in.msg.num_fields < 1 ||
          in.msg.at(0) != 1)
        continue;
      // F-edge token: 1 | u | v | u_in_u | v_in_u   (edge into U).
      const auto a = static_cast<std::uint64_t>(node.id());
      const auto b = static_cast<std::uint64_t>(in.from);
      const std::uint64_t packed =
          ((((a * n + b) << 1) | (in_u[me] != 0 ? 1 : 0)) << 1) | 1u;
      tokens[me].push_back((packed << 1) | 1u);  // low bit 1: edge token
    }
    if (in_u[me] != 0) {
      // Weight token: (v * base + w) with low bit 0.
      const std::uint64_t packed =
          static_cast<std::uint64_t>(node.id()) * weight_base +
          static_cast<std::uint64_t>(w[node.id()]);
      tokens[me].push_back(packed << 1);
    }
  });

  const NodeId leader = congest::elect_min_id_leader(net);
  const congest::BfsTree tree = congest::build_bfs_tree(net, leader);
  const auto raw = congest::upcast_tokens(net, tree, std::move(tokens));

  // Leader-local reconstruction of H = G^2[U] with weights.
  std::set<std::pair<VertexId, VertexId>> f_edges;
  std::map<VertexId, Weight> u_weight;
  std::map<VertexId, std::vector<VertexId>> u_neighbors;
  const bool adversarial = net.faults_active();
  for (std::uint64_t token : raw) {
    if (token & 1u) {  // edge token
      std::uint64_t packed = token >> 1;
      // Corrupted kToken payloads decode arbitrarily; malformed or
      // out-of-range tokens would index the leader's tables out of bounds,
      // so they are rejected — a hard invariant unless an adversary is
      // active, in which case the degraded cover goes to the certifier.
      if ((packed & 1u) != 1u || (packed >> 2) / n >= n) {
        PG_CHECK(adversarial, "malformed edge token");
        continue;
      }
      packed >>= 1;
      const bool sender_in_u = (packed & 1u) != 0;
      packed >>= 1;
      const auto sender = static_cast<VertexId>(packed / n);
      const auto nbr = static_cast<VertexId>(packed % n);
      const auto key = std::minmax(sender, nbr);
      f_edges.insert({key.first, key.second});
      u_neighbors[sender].push_back(nbr);  // nbr is in U by construction
      if (sender_in_u) u_neighbors[nbr].push_back(sender);
    } else {
      const std::uint64_t packed = token >> 1;
      if (packed / weight_base >= n) {
        PG_CHECK(adversarial, "weight token out of range");
        continue;
      }
      u_weight[static_cast<VertexId>(packed / weight_base)] =
          static_cast<Weight>(packed % weight_base);
    }
  }
  result.f_edge_count = f_edges.size();

  std::vector<VertexId> u_list;
  for (const auto& [v, weight] : u_weight) {
    (void)weight;
    u_list.push_back(v);
  }
  std::vector<VertexId> to_h(n, -1);
  for (std::size_t i = 0; i < u_list.size(); ++i)
    to_h[static_cast<std::size_t>(u_list[i])] = static_cast<VertexId>(i);

  graph::GraphBuilder h_builder(static_cast<VertexId>(u_list.size()));
  for (const auto& [u, v] : f_edges)
    if (to_h[static_cast<std::size_t>(u)] != -1 &&
        to_h[static_cast<std::size_t>(v)] != -1)
      h_builder.add_edge(to_h[static_cast<std::size_t>(u)],
                         to_h[static_cast<std::size_t>(v)]);
  for (auto& [mid, nbrs] : u_neighbors) {
    (void)mid;
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      for (std::size_t j = i + 1; j < nbrs.size(); ++j)
        h_builder.add_edge(to_h[static_cast<std::size_t>(nbrs[i])],
                           to_h[static_cast<std::size_t>(nbrs[j])]);
  }
  const Graph h = std::move(h_builder).build();

  VertexWeights h_weights(h.num_vertices());
  for (std::size_t i = 0; i < u_list.size(); ++i)
    h_weights.set(static_cast<VertexId>(i), u_weight.at(u_list[i]));

  VertexSet h_cover(h.num_vertices());
  if (config.leader_exact) {
    const solvers::ExactResult exact =
        solvers::solve_mwvc(h, h_weights, config.exact_node_budget);
    result.leader_solution_optimal = exact.optimal;
    h_cover = exact.solution;
  } else {
    h_cover = solvers::local_ratio_mwvc(h, h_weights);
    result.leader_solution_optimal = false;
  }

  std::vector<std::uint64_t> solution_tokens;
  for (VertexId hv : h_cover.to_vector())
    solution_tokens.push_back(
        static_cast<std::uint64_t>(u_list[static_cast<std::size_t>(hv)]));
  const auto received = congest::downcast_tokens(net, tree, solution_tokens);
  for (std::size_t v = 0; v < n; ++v)
    for (std::uint64_t token : received[v])
      if (token == v) result.cover.insert(static_cast<VertexId>(v));

  result.phase2_rounds = net.stats().rounds - result.phase1_rounds;
  result.stats = net.stats();
  return result;
}

}  // namespace pg::core
