#include "core/reductions.hpp"

#include <algorithm>
#include <cmath>

#include "core/mvc_congest.hpp"
#include "graph/matching.hpp"
#include "graph/ops.hpp"
#include "solvers/exact_vc.hpp"
#include "solvers/fpt_vc.hpp"

namespace pg::core {

using graph::Graph;
using graph::GraphView;
using graph::GraphBuilder;
using graph::VertexId;
using graph::VertexSet;
using graph::Weight;

SquareReduction reduce_mvc_to_square(GraphView g) {
  SquareReduction reduction;
  reduction.original_vertices = g.num_vertices();
  GraphBuilder b(g.num_vertices());
  g.for_each_edge([&](VertexId u, VertexId v) {
    const VertexId p1 = b.add_vertex();
    const VertexId p2 = b.add_vertex();
    const VertexId p3 = b.add_vertex();
    b.add_edge(p1, u);
    b.add_edge(p1, v);
    b.add_edge(p1, p2);
    b.add_edge(p2, p3);
    ++reduction.num_gadgets;
  });
  reduction.h = std::move(b).build();
  return reduction;
}

SquareReduction reduce_mds_to_square(GraphView g) {
  PG_REQUIRE(g.num_edges() >= 1,
             "the MDS reduction needs at least one edge to hang DP_E on");
  SquareReduction reduction;
  reduction.original_vertices = g.num_vertices();
  GraphBuilder b(g.num_vertices());
  const VertexId tail3 = b.add_vertex();
  const VertexId tail4 = b.add_vertex();
  const VertexId tail5 = b.add_vertex();
  b.add_edge(tail3, tail4);
  b.add_edge(tail4, tail5);
  g.for_each_edge([&](VertexId u, VertexId v) {
    const VertexId p1 = b.add_vertex();
    const VertexId p2 = b.add_vertex();
    b.add_edge(p1, u);
    b.add_edge(p1, v);
    b.add_edge(p1, p2);
    b.add_edge(p2, tail3);
    ++reduction.num_gadgets;
  });
  reduction.h = std::move(b).build();
  return reduction;
}

VertexSet restrict_cover_to_original(const SquareReduction& reduction,
                                     const VertexSet& h2_cover) {
  PG_REQUIRE(h2_cover.universe_size() == reduction.h.num_vertices(),
             "cover universe mismatch");
  VertexSet cover(reduction.original_vertices);
  for (VertexId v = 0; v < reduction.original_vertices; ++v)
    if (h2_cover.contains(v)) cover.insert(v);
  return cover;
}

ConditionalResult conditional_mvc_approx(GraphView g, double delta,
                                         double alpha) {
  PG_REQUIRE(delta > 0 && delta < 1, "delta must lie in (0,1)");
  PG_REQUIRE(alpha > 0 && alpha <= 1, "alpha must lie in (0,1]");
  PG_REQUIRE(g.num_vertices() >= 2, "need at least two vertices");

  ConditionalResult result;
  const double n = static_cast<double>(g.num_vertices());
  const double m = static_cast<double>(std::max<std::size_t>(g.num_edges(), 1));
  const double rho = std::log(1.0 / delta) / std::log(n);
  result.beta = (2.0 * (1.0 + alpha) + rho) / 3.0;

  // Rough constant-factor approximation (stand-in for [BEKS18]; footnote 3
  // of the paper allows any constant factor here).
  const VertexSet rough = graph::matching_vertex_cover(g);
  const double sol = std::max<double>(static_cast<double>(rough.size()), 2.0);
  result.gamma = std::log(sol / 2.0) / std::log(n);

  if (result.gamma < result.beta) {
    // Small optimum: solve exactly — at least as good as the [BBiKS19]
    // (1+δ)-approximation.  The bounded search tree plays the
    // parameterized role while the budget k stays small; past that the
    // branch-and-bound solver takes over (still exact, still (1+δ)).
    result.used_parameterized_branch = true;
    const Weight start = static_cast<Weight>(rough.size()) / 2;
    constexpr Weight kSearchTreeCap = 24;
    if (start <= kSearchTreeCap) {
      for (Weight k = start; k <= kSearchTreeCap; ++k) {
        const auto cover = solvers::fpt_vertex_cover(g, k);
        if (cover.has_value()) {
          result.cover = *cover;
          return result;
        }
      }
    }
    result.cover = solvers::solve_mvc(g).solution;
    return result;
  }

  // Large optimum: gadget reduction + the G^2 algorithm.
  const SquareReduction reduction = reduce_mvc_to_square(g);
  result.h_vertices = static_cast<std::size_t>(reduction.h.num_vertices());
  result.epsilon_used =
      delta * std::pow(n, result.beta) / (3.0 * m);
  MvcCongestConfig config;
  config.epsilon = std::min(result.epsilon_used, 0.999);
  const MvcCongestResult alg = solve_g2_mvc_congest(reduction.h, config);
  result.simulated_rounds = alg.stats.rounds;
  result.cover = restrict_cover_to_original(reduction, alg.cover);
  PG_CHECK(graph::is_vertex_cover(g, result.cover),
           "reduction produced a non-cover");
  return result;
}

VertexSet exact_mvc_via_g2_fptas(GraphView g) {
  PG_REQUIRE(g.num_edges() >= 1, "need at least one edge");
  const SquareReduction reduction = reduce_mvc_to_square(g);
  MvcCongestConfig config;
  config.epsilon = 1.0 / (3.0 * static_cast<double>(g.num_edges()));
  const MvcCongestResult alg = solve_g2_mvc_congest(reduction.h, config);
  VertexSet cover = restrict_cover_to_original(reduction, alg.cover);
  PG_CHECK(graph::is_vertex_cover(g, cover),
           "FPTAS reduction produced a non-cover");
  return cover;
}

}  // namespace pg::core
