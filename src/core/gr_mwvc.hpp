// Theorem 7's structural idea lifted to arbitrary powers G^r, centrally:
// a (2+ε)-approximation for minimum *weighted* vertex cover of G^r that
// runs on the implicit power graph, so weighted cells reach n = 10^5
// without materializing G^r.
//
// Phase 1 mirrors the paper's weighted center condition (Section 4 /
// Theorem 7): around a center c, the ball of radius ⌊r/2⌋ is a clique of
// G^r, and its members are bucketed into weight classes
// w_min(c)·2^i <= w(v) < w_min(c)·2^{i+1}.  A class whose total weight
// W_i dominates its maximum w*_i by (l+1)·w*_i <= W_i (with l = ⌈1/ε⌉)
// is taken wholesale: any vertex cover must pay at least W_i − w*_i >=
// W_i/(1+ε) inside the class (a clique omits at most one vertex, the
// priciest), so the classes taken cost at most (1+ε)·w(OPT ∩ classes)
// — the charging is to the classes' own disjoint vertex sets, so no
// 2-hop winner separation is needed centrally.  Zero-weight vertices
// join the cover for free up front, as the paper assumes w.l.o.g.
//
// Phase 2 solves the remainder exactly per connected component of the
// remainder-induced power subgraph (budget- and size-capped, like
// core::solve_gr_mvc), falling back to the local-ratio 2-approximation
// above the caps — and skipping the materialization entirely for very
// large remainders, where the restricted implicit local ratio runs in
// O(Σ remainder balls) with O(n) memory.  With an exact remainder the
// total is (1+ε)·OPT_w; with a local-ratio remainder, (2+ε)·OPT_w —
// `remainder_optimal` reports which bound applies.
#pragma once

#include <cstdint>

#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace pg::core {

struct GrMwvcResult {
  graph::VertexSet cover;      // weighted vertex cover of G^r
  int classes_taken = 0;       // weight classes fired in phase 1
  std::size_t phase1_size = 0;
  graph::Weight phase1_weight = 0;  // includes the free zero-weight vertices
  std::size_t remainder_size = 0;   // vertices left for the exact phase
  // True iff every remainder component was solved to optimality — the
  // (1+ε) guarantee holds exactly then; false after a size/budget
  // downgrade to local ratio, where (2+ε) still holds.
  bool remainder_optimal = true;
};

/// (2+ε)-approximate minimum weighted vertex cover of G^r (r >= 2,
/// ε in (0, 1], w >= 0 with w(v) <= int64_max / n so class sums cannot
/// overflow), (1+ε) when the remainder solves exactly.  Implicit
/// end-to-end: the class phase re-checks only centers whose balls lost a
/// vertex (a worklist over truncated-BFS balls), and the remainder is
/// materialized only when it is small enough
/// (<= max_remainder_materialize vertices) to hand to the per-component
/// exact solver.
GrMwvcResult solve_gr_mwvc(graph::GraphView g, int r,
                           const graph::VertexWeights& w, double epsilon,
                           std::int64_t exact_node_budget = 50'000'000,
                           graph::VertexId max_exact_component = 1024,
                           std::size_t max_remainder_materialize = 50'000);

}  // namespace pg::core
