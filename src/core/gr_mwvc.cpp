#include "core/gr_mwvc.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "core/solver_util.hpp"
#include "graph/ops.hpp"
#include "graph/power_view.hpp"
#include "util/cancel.hpp"
#include "solvers/exact_vc.hpp"
#include "solvers/greedy.hpp"

namespace pg::core {

using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexSet;
using graph::VertexWeights;
using graph::Weight;

namespace {

VertexSet solve_component_weighted(GraphView comp, const VertexWeights& cw,
                                   VertexId max_exact, std::int64_t& budget,
                                   bool& optimal) {
  if (comp.num_vertices() > max_exact || budget <= 0) {
    optimal = false;
    return solvers::local_ratio_mwvc(comp, cw);
  }
  const auto exact = solvers::solve_mwvc(
      comp, cw, component_budget(comp.num_vertices(), budget));
  budget -= exact.nodes_explored;
  if (!exact.optimal) optimal = false;
  return exact.solution;
}

}  // namespace

GrMwvcResult solve_gr_mwvc(GraphView g, int r, const VertexWeights& w,
                           double epsilon, std::int64_t exact_node_budget,
                           VertexId max_exact_component,
                           std::size_t max_remainder_materialize) {
  PG_REQUIRE(r >= 2, "the ball structure needs r >= 2");
  PG_REQUIRE(epsilon > 0 && epsilon <= 1, "epsilon must lie in (0, 1]");
  const VertexId n = g.num_vertices();
  PG_REQUIRE(w.size() == n, "weights/graph size mismatch");
  const Weight sum_safe =
      std::numeric_limits<Weight>::max() / std::max<VertexId>(n, 1);
  for (VertexId v = 0; v < n; ++v)
    PG_REQUIRE(w[v] >= 0 && w[v] <= sum_safe,
               "weights must be non-negative and <= int64_max / n "
               "(class sums must not overflow)");
  const auto l = static_cast<Weight>(std::ceil(1.0 / epsilon));
  const int radius = r / 2;

  GrMwvcResult result;
  result.cover = VertexSet(n);
  const auto un = static_cast<std::size_t>(n);
  std::vector<bool> in_r(un, true);
  for (VertexId v = 0; v < n; ++v)
    if (w[v] == 0) {
      in_r[static_cast<std::size_t>(v)] = false;
      result.cover.insert(v);
    }

  graph::PowerView view(g, r);

  // w_min(c): the smallest positive weight in the *original* ball around
  // c (computed once, like the CONGEST algorithm's round-0 cache) — the
  // anchor of c's weight classes for the whole run.
  std::vector<Weight> w_min(un, 0);
  for (VertexId c = 0; c < n; ++c) {
    Weight lowest = 0;
    view.for_each_in_ball(c, radius, [&](VertexId v) {
      const Weight wv = w[v];
      if (wv > 0 && (lowest == 0 || wv < lowest)) lowest = wv;
    });
    w_min[static_cast<std::size_t>(c)] = lowest;
  }

  // Phase 1 worklist: a center needs re-checking only when its ball lost
  // a vertex (losing a class maximum can *enable* the center condition,
  // so unlike the unweighted active-count scan this is not one-pass).
  // dist(c, v) <= radius is symmetric, so the centers affected by
  // removing v are exactly the ball around v.  FIFO + an in-queue flag
  // keeps the schedule deterministic.
  constexpr int kMaxClasses = 64;
  std::vector<Weight> class_sum(kMaxClasses, 0), class_max(kMaxClasses, 0);
  std::vector<int> touched;
  std::vector<VertexId> members, removed;
  std::vector<char> in_queue(un, 1);
  std::deque<VertexId> work;
  for (VertexId c = 0; c < n; ++c) work.push_back(c);

  while (!work.empty()) {
    cancel::poll();  // watchdog point: one worklist pop is bounded work
    const VertexId c = work.front();
    work.pop_front();
    in_queue[static_cast<std::size_t>(c)] = 0;
    const Weight anchor = w_min[static_cast<std::size_t>(c)];
    if (anchor == 0) continue;

    // A center may fire several classes in a row; keep re-checking it in
    // place until none is left (the CONGEST loop does the same across
    // iterations).
    for (;;) {
      for (int i : touched) {
        class_sum[static_cast<std::size_t>(i)] = 0;
        class_max[static_cast<std::size_t>(i)] = 0;
      }
      touched.clear();
      members.clear();
      view.for_each_in_ball(c, radius, [&](VertexId v) {
        if (!in_r[static_cast<std::size_t>(v)]) return;
        members.push_back(v);
        const int i = weight_class(anchor, w[v]);
        PG_CHECK(i < kMaxClasses, "weight class out of range");
        auto& sum = class_sum[static_cast<std::size_t>(i)];
        auto& mx = class_max[static_cast<std::size_t>(i)];
        if (sum == 0 && mx == 0) touched.push_back(i);
        sum += w[v];
        mx = std::max(mx, w[v]);
      });
      std::sort(touched.begin(), touched.end());
      int fired = -1;
      // (l+1)·w* <= W, phrased divide-side (exactly equivalent for
      // integers) so a large l cannot overflow the product.
      for (int i : touched)
        if (class_max[static_cast<std::size_t>(i)] <=
            class_sum[static_cast<std::size_t>(i)] / (l + 1)) {
          fired = i;
          break;
        }
      if (fired == -1) break;

      removed.clear();
      for (VertexId v : members)
        if (weight_class(anchor, w[v]) == fired) removed.push_back(v);
      for (VertexId v : removed) {
        in_r[static_cast<std::size_t>(v)] = false;
        result.cover.insert(v);
        result.phase1_weight += w[v];
      }
      ++result.classes_taken;
      for (VertexId v : removed)
        view.for_each_in_ball(v, radius, [&](VertexId x) {
          auto& queued = in_queue[static_cast<std::size_t>(x)];
          if (queued || x == c) return;
          queued = 1;
          work.push_back(x);
        });
    }
  }
  result.phase1_size = result.cover.size();

  // Phase 2: the remainder.  Small remainders materialize their induced
  // power subgraph and solve per component (exact under the caps, local
  // ratio above); a remainder too large to materialize runs the
  // restricted implicit local ratio instead — O(Σ remainder balls) work,
  // O(n) memory, and the (2+ε) bound.
  std::vector<VertexId> remainder;
  for (std::size_t v = 0; v < un; ++v)
    if (in_r[v]) remainder.push_back(static_cast<VertexId>(v));
  result.remainder_size = remainder.size();

  if (remainder.size() > max_remainder_materialize) {
    // Remainder weights are strictly positive (zero-weight vertices left
    // in phase 0), which is exactly the restricted solver's contract.
    result.remainder_optimal = false;
    const VertexSet remainder_cover =
        solvers::local_ratio_mwvc_power_on(g, r, w, in_r);
    for (VertexId v : remainder_cover.to_vector()) result.cover.insert(v);
  } else {
    const auto induced = graph::induced_power_subgraph(g, r, remainder);
    std::int64_t budget = exact_node_budget;
    const auto comps = graph::connected_components(induced.graph);
    auto weight_of_local = [&](VertexId local) {
      return w[induced.to_original[static_cast<std::size_t>(local)]];
    };
    if (comps.count <= 1) {
      VertexWeights iw(induced.graph.num_vertices());
      for (VertexId v = 0; v < induced.graph.num_vertices(); ++v)
        iw.set(v, weight_of_local(v));
      const VertexSet cover =
          solve_component_weighted(induced.graph, iw, max_exact_component,
                                   budget, result.remainder_optimal);
      for (VertexId local : cover.to_vector())
        result.cover.insert(
            induced.to_original[static_cast<std::size_t>(local)]);
    } else {
      std::vector<std::vector<VertexId>> comp_members(
          static_cast<std::size_t>(comps.count));
      for (VertexId v = 0; v < induced.graph.num_vertices(); ++v)
        comp_members[static_cast<std::size_t>(
                         comps.component[static_cast<std::size_t>(v)])]
            .push_back(v);
      for (const std::vector<VertexId>& comp_vertices : comp_members) {
        const auto comp =
            graph::induced_subgraph(induced.graph, comp_vertices);
        VertexWeights cw(comp.graph.num_vertices());
        for (VertexId v = 0; v < comp.graph.num_vertices(); ++v)
          cw.set(v,
                 weight_of_local(comp.to_original[static_cast<std::size_t>(v)]));
        const VertexSet cover =
            solve_component_weighted(comp.graph, cw, max_exact_component,
                                     budget, result.remainder_optimal);
        for (VertexId local : cover.to_vector())
          result.cover.insert(induced.to_original[static_cast<std::size_t>(
              comp.to_original[static_cast<std::size_t>(local)])]);
      }
    }
  }

  PG_CHECK(graph::is_vertex_cover_power(g, r, result.cover),
           "G^r weighted class cover is not a vertex cover");
  return result;
}

}  // namespace pg::core
