// The naive CONGEST baseline the paper repeatedly contrasts against: ship
// the *entire* graph to a leader over a BFS tree (Θ(m + D) rounds, i.e.
// Θ(n^2) on dense graphs), solve the problem locally, broadcast the
// answer.  Exact and always applicable — just slow, which is precisely the
// gap Theorems 1 and 28 close.
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace pg::core {

enum class NaiveProblem {
  kMvcOnSquare,  // exact minimum vertex cover of G^2
  kMdsOnSquare,  // exact minimum dominating set of G^2
};

struct NaiveResult {
  graph::VertexSet solution;
  congest::RoundStats stats;
  bool optimal = true;  // false if the leader's solver ran out of budget
};

/// Gathers G at a leader, solves `problem` on G^2 exactly, and broadcasts
/// the answer; every round is simulated and counted.
NaiveResult solve_naively_in_congest(
    graph::GraphView g, NaiveProblem problem,
    std::int64_t exact_node_budget = 50'000'000);

/// Caller-owned-simulator overload: rewinds `net` via Network::reset() and
/// runs on its topology, so batch drivers reuse one simulator per worker.
NaiveResult solve_naively_in_congest(
    congest::Network& net, NaiveProblem problem,
    std::int64_t exact_node_budget = 50'000'000);

}  // namespace pg::core
