#include "core/trivial.hpp"

namespace pg::core {

graph::VertexSet trivial_power_cover(graph::GraphView g) {
  graph::VertexSet cover(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) cover.insert(v);
  return cover;
}

double trivial_cover_opt_lower_bound(graph::VertexId n, int r) {
  PG_REQUIRE(r >= 1, "power exponent must be >= 1");
  const double alpha = static_cast<double>(r / 2 + 1);
  return static_cast<double>(n) - static_cast<double>(n) / alpha;
}

double trivial_cover_guarantee(int r) {
  PG_REQUIRE(r >= 2, "the trivial guarantee needs r >= 2 (⌊r/2⌋ >= 1)");
  return 1.0 + 1.0 / static_cast<double>(r / 2);
}

}  // namespace pg::core
