#include "core/mvc_clique.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <set>

#include "core/mvc_centralized.hpp"
#include "core/trivial.hpp"
#include "graph/ops.hpp"
#include "solvers/exact_vc.hpp"

namespace pg::core {

using clique::CliqueNetwork;
using clique::Incoming;
using clique::Message;
using clique::NodeId;
using clique::NodeView;
using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexSet;

namespace {

constexpr std::uint8_t kStatus = 21;     // field 0: 1 iff in R
constexpr std::uint8_t kCandidate = 22;  // field 0: r_c (randomized) / 0
constexpr std::uint8_t kMaxCand = 23;    // deterministic symmetry breaking
constexpr std::uint8_t kTake = 24;       // center takes its neighborhood
constexpr std::uint8_t kVote = 25;       // field 0: id of chosen candidate
constexpr std::uint8_t kFEdge = 26;      // field 0: packed F-edge
constexpr std::uint8_t kInCover = 27;    // field 0: 1 iff recipient in R*

/// Shared Phase II (Lemma 9): node 0 acts as leader (ids are common
/// knowledge in the clique, so no election is needed).  Every node streams
/// its incident F-edges to the leader, one per round; the leader
/// reconstructs H = G^2[U] (Lemma 3), solves it, and answers every node
/// with a dedicated message in a single final round.
void learn_and_solve(CliqueNetwork& net, const std::vector<bool>& in_u,
                     const MvcCliqueConfig& config, MvcCliqueResult& result) {
  const std::size_t n = net.n();

  std::vector<std::deque<std::uint64_t>> queue(n);
  net.round([&](NodeView& node) {
    node.send_to_graph_neighbors(
        Message{kStatus, {in_u[static_cast<std::size_t>(node.id())] ? 1 : 0}});
  });
  net.round([&](NodeView& node) {
    const auto me = static_cast<std::size_t>(node.id());
    for (const Incoming& in : node.inbox()) {
      if (in.msg.kind != kStatus || in.msg.at(0) != 1) continue;
      const auto a = static_cast<std::uint64_t>(node.id());
      const auto b = static_cast<std::uint64_t>(in.from);
      queue[me].push_back(((a * n + b) << 1) | (in_u[me] ? 1u : 0u));
    }
  });

  // Leader-side accumulators (only node 0's callback writes them).
  std::set<std::pair<VertexId, VertexId>> f_edges;
  std::map<VertexId, std::vector<VertexId>> u_neighbors;
  auto leader_absorb = [&](std::uint64_t token) {
    const bool sender_in_u = token & 1u;
    const std::uint64_t pair = token >> 1;
    const auto sender = static_cast<VertexId>(pair / n);
    const auto nbr = static_cast<VertexId>(pair % n);  // nbr is in U
    const auto key = std::minmax(sender, nbr);
    f_edges.insert({key.first, key.second});
    u_neighbors[sender].push_back(nbr);
    if (sender_in_u) u_neighbors[nbr].push_back(sender);
  };

  auto any_queued = [&]() {
    for (const auto& q : queue)
      if (!q.empty()) return true;
    return false;
  };
  while (any_queued()) {
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      if (node.id() == 0) {
        for (const Incoming& in : node.inbox())
          if (in.msg.kind == kFEdge)
            leader_absorb(static_cast<std::uint64_t>(in.msg.at(0)));
        while (!queue[me].empty()) {  // leader's own edges are local info
          leader_absorb(queue[me].front());
          queue[me].pop_front();
        }
        return;
      }
      if (!queue[me].empty()) {
        node.send(0, Message{kFEdge,
                             {static_cast<std::int64_t>(queue[me].front())}});
        queue[me].pop_front();
      }
    });
  }
  // One more round so the last in-flight tokens reach the leader.
  net.round([&](NodeView& node) {
    if (node.id() != 0) return;
    for (const Incoming& in : node.inbox())
      if (in.msg.kind == kFEdge)
        leader_absorb(static_cast<std::uint64_t>(in.msg.at(0)));
  });
  result.f_edge_count = f_edges.size();

  // Leader-local: build H = G^2[U] from F and solve it.
  std::vector<bool> known_in_u(n, false);
  for (const auto& [w, nbrs] : u_neighbors)
    for (VertexId u : nbrs) {
      (void)w;
      known_in_u[static_cast<std::size_t>(u)] = true;
    }
  std::vector<VertexId> u_list;
  for (std::size_t v = 0; v < n; ++v)
    if (known_in_u[v]) u_list.push_back(static_cast<VertexId>(v));
  std::vector<VertexId> to_h(n, -1);
  for (std::size_t i = 0; i < u_list.size(); ++i)
    to_h[static_cast<std::size_t>(u_list[i])] = static_cast<VertexId>(i);

  graph::GraphBuilder h_builder(static_cast<VertexId>(u_list.size()));
  for (const auto& [u, v] : f_edges)
    if (to_h[static_cast<std::size_t>(u)] != -1 &&
        to_h[static_cast<std::size_t>(v)] != -1)
      h_builder.add_edge(to_h[static_cast<std::size_t>(u)],
                         to_h[static_cast<std::size_t>(v)]);
  for (auto& [w, nbrs] : u_neighbors) {
    (void)w;
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      for (std::size_t j = i + 1; j < nbrs.size(); ++j)
        h_builder.add_edge(to_h[static_cast<std::size_t>(nbrs[i])],
                           to_h[static_cast<std::size_t>(nbrs[j])]);
  }
  const Graph h = std::move(h_builder).build();

  VertexSet h_cover(h.num_vertices());
  if (config.leader_exact) {
    const solvers::ExactResult exact =
        solvers::solve_mvc(h, config.exact_node_budget);
    result.leader_solution_optimal = exact.optimal;
    h_cover = exact.solution;
  } else {
    h_cover = five_thirds_cover(h);
    result.leader_solution_optimal = false;
  }
  std::vector<bool> in_rstar(n, false);
  for (VertexId hv : h_cover.to_vector())
    in_rstar[static_cast<std::size_t>(u_list[static_cast<std::size_t>(hv)])] =
        true;

  // Single answer round: the leader tells every node its membership.
  net.round([&](NodeView& node) {
    if (node.id() != 0) return;
    for (NodeId other = 1; other < static_cast<NodeId>(n); ++other)
      node.send(other, Message{kInCover,
                               {in_rstar[static_cast<std::size_t>(other)] ? 1
                                                                          : 0}});
  });
  net.round([&](NodeView& node) {
    const auto me = static_cast<std::size_t>(node.id());
    if (node.id() == 0) {
      if (in_rstar[me]) result.cover.insert(node.id());
      return;
    }
    for (const Incoming& in : node.inbox())
      if (in.msg.kind == kInCover && in.msg.at(0) == 1)
        result.cover.insert(node.id());
  });
}

/// Deterministic Phase I of Algorithm 1 run inside the clique (messages
/// only along G edges).  Mutates in_r; selected neighborhoods join
/// result.cover.  Returns the number of selecting iterations.
int deterministic_phase1(CliqueNetwork& net, int l, std::vector<bool>& in_r,
                         MvcCliqueResult& result) {
  const std::size_t n = net.n();
  std::vector<bool> in_c(n, true);
  std::vector<bool> is_candidate(n, false);
  std::vector<NodeId> max1(n, -1);
  int iterations = 0;

  bool any_candidate = true;
  while (any_candidate) {
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kTake && in_r[me]) {
          in_r[me] = false;
          result.cover.insert(node.id());
        }
      node.send_to_graph_neighbors(Message{kStatus, {in_r[me] ? 1 : 0}});
    });
    any_candidate = false;
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      int count = 0;
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kStatus && in.msg.at(0) == 1) ++count;
      is_candidate[me] = in_c[me] && count > l;
      if (is_candidate[me]) {
        any_candidate = true;
        node.send_to_graph_neighbors(Message{kCandidate, {0}});
      }
    });
    if (!any_candidate) break;
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      NodeId best = is_candidate[me] ? node.id() : -1;
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kCandidate) best = std::max(best, in.from);
      max1[me] = best;
      node.send_to_graph_neighbors(Message{kMaxCand, {best}});
    });
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      NodeId best = max1[me];
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kMaxCand)
          best = std::max(best, static_cast<NodeId>(in.msg.at(0)));
      if (is_candidate[me] && best == node.id()) {
        in_c[me] = false;
        node.send_to_graph_neighbors(Message{kTake, {}});
      }
    });
    ++iterations;
  }
  return iterations;
}

}  // namespace

MvcCliqueResult solve_g2_mvc_clique_deterministic(
    GraphView g, const MvcCliqueConfig& config) {
  PG_REQUIRE(config.epsilon > 0, "epsilon must be positive");
  MvcCliqueResult result;
  result.cover = VertexSet(g.num_vertices());
  if (g.num_vertices() <= 1) return result;
  if (config.epsilon >= 1.0) {
    result.cover = trivial_power_cover(g);
    return result;
  }
  const int l = static_cast<int>(std::ceil(1.0 / config.epsilon));

  CliqueNetwork net(g);
  std::vector<bool> in_r(net.n(), true);
  result.phases = deterministic_phase1(net, l, in_r, result);
  result.phase1_cover_size = result.cover.size();
  learn_and_solve(net, in_r, config, result);
  result.stats = net.stats();
  return result;
}

MvcCliqueResult solve_g2_mvc_clique_randomized(GraphView g, Rng& rng,
                                               const MvcCliqueConfig& config) {
  PG_REQUIRE(config.epsilon > 0, "epsilon must be positive");
  MvcCliqueResult result;
  result.cover = VertexSet(g.num_vertices());
  if (g.num_vertices() <= 1) return result;
  if (config.epsilon >= 1.0) {
    result.cover = trivial_power_cover(g);
    return result;
  }
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  // A candidate leaves C once d_R(c) <= 8/ε + 2 (Theorem 11).
  const int threshold = static_cast<int>(std::ceil(8.0 / config.epsilon)) + 2;
  const std::uint64_t r_range = static_cast<std::uint64_t>(n) * n * n * n;

  CliqueNetwork net(g);
  std::vector<bool> in_r(n, true);
  std::vector<bool> in_c(n, true);
  std::vector<bool> is_candidate(n, false);
  std::vector<int> r_deg(n, 0);
  std::vector<std::int64_t> my_draw(n, 0);

  // W.h.p. O(log n) phases suffice (potential argument); the cap below is a
  // deterministic safety net that falls back to the ε n-round Phase I.
  const int phase_cap =
      200 * (static_cast<int>(std::ceil(std::log2(std::max<double>(n, 2)))) + 1);

  bool any_candidate = true;
  while (any_candidate && result.phases < phase_cap) {
    // Round 1: apply takes, announce R status.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kTake && in_r[me]) {
          in_r[me] = false;
          result.cover.insert(node.id());
        }
      node.send_to_graph_neighbors(Message{kStatus, {in_r[me] ? 1 : 0}});
    });

    // Round 2: update d_R, drop below-threshold centers, draw r_c.
    any_candidate = false;
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      int count = 0;
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kStatus && in.msg.at(0) == 1) ++count;
      r_deg[me] = count;
      if (in_c[me] && count <= threshold) in_c[me] = false;
      is_candidate[me] = in_c[me];
      if (is_candidate[me]) {
        any_candidate = true;
        my_draw[me] = static_cast<std::int64_t>(rng.next_below(r_range));
        node.send_to_graph_neighbors(Message{kCandidate, {my_draw[me]}});
      }
    });
    if (!any_candidate) break;

    // Round 3: R-vertices vote for the highest-draw candidate neighbor and
    // inform all their candidate neighbors of the vote.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      if (!in_r[me]) return;
      NodeId chosen = -1;
      std::int64_t chosen_draw = -1;
      std::vector<NodeId> candidates;
      for (const Incoming& in : node.inbox()) {
        if (in.msg.kind != kCandidate) continue;
        candidates.push_back(in.from);
        const std::int64_t draw = in.msg.at(0);
        if (draw > chosen_draw ||
            (draw == chosen_draw && in.from > chosen)) {
          chosen_draw = draw;
          chosen = in.from;
        }
      }
      for (NodeId c : candidates) node.send(c, Message{kVote, {chosen}});
    });

    // Round 4: candidates count votes; winners take their neighborhoods.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      if (!is_candidate[me]) return;
      int votes = 0;
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kVote && in.msg.at(0) == node.id()) ++votes;
      if (8 * votes >= r_deg[me] && votes > 0) {
        in_c[me] = false;
        node.send_to_graph_neighbors(Message{kTake, {}});
      }
    });
    ++result.phases;
  }

  if (any_candidate) {
    // Safety fallback (never expected): finish deterministically.
    const int l = static_cast<int>(std::ceil(1.0 / config.epsilon));
    result.phases += deterministic_phase1(net, l, in_r, result);
  } else {
    // Drain the last kTake messages (sent in the final phase's round 4).
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kTake && in_r[me]) {
          in_r[me] = false;
          result.cover.insert(node.id());
        }
    });
  }

  result.phase1_cover_size = result.cover.size();
  learn_and_solve(net, in_r, config, result);
  result.stats = net.stats();
  return result;
}

}  // namespace pg::core
