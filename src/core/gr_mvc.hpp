// Extension: Algorithm 1's structural idea lifted to arbitrary powers G^r.
//
// The engine behind Theorem 1 is that neighborhoods of G are cliques of
// G^2, so covering a whole neighborhood overpays by at most one vertex.
// The same holds for any r >= 2 with balls of radius ⌊r/2⌋: two vertices
// within such a ball are at distance <= 2⌊r/2⌋ <= r, i.e. adjacent in G^r.
// Repeatedly taking balls that still contain more than 1/ε uncovered
// vertices, then solving the sparse remainder exactly, yields a
// centralized (1+ε)-approximation for MVC on G^r for every r >= 2 — the
// natural generalization the paper's Lemma 6 gestures at (its trivial
// cover is the ε -> 1 endpoint of this algorithm).
#pragma once

#include <cstdint>

#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace pg::core {

struct GrMvcResult {
  graph::VertexSet cover;     // vertex cover of G^r
  int centers = 0;            // balls taken in the first phase
  std::size_t phase1_size = 0;
  std::size_t remainder_size = 0;  // vertices left for the exact phase
  // True iff every remainder component was solved to optimality (the
  // (1+ε) guarantee holds exactly then); false when the node budget ran
  // out or a component exceeded the exact-solver size cap and fell back
  // to the local-ratio 2-approximation.
  bool remainder_optimal = true;
};

/// (1+ε)-approximate minimum vertex cover of G^r (r >= 2, ε in (0, 1]).
/// Runs on the implicit power graph (graph::PowerView): the ball phase is
/// a worklist over truncated-BFS balls with incrementally maintained
/// active counts, and the exact phase sees only the remainder-induced
/// power subgraph, solved per connected component — G^r itself is never
/// materialized, so n = 10^5 power-law instances run in seconds within
/// O(n + m) + remainder memory.
///
/// The exact phase is wall-clock- and memory-guarded: a component larger
/// than `max_exact_component` vertices (the branch-and-bound solver's
/// per-node cost and adjacency bitsets grow quadratically in component
/// size) takes the local-ratio 2-approximation instead, and components
/// above 64 vertices get a size-scaled slice of the node budget rather
/// than all of it.  Both downgrades — and a plain budget abort — are
/// reported through `remainder_optimal`; callers that need the (1+ε)
/// guarantee at any cost can raise both knobs.
GrMvcResult solve_gr_mvc(graph::GraphView g, int r, double epsilon,
                         std::int64_t exact_node_budget = 50'000'000,
                         graph::VertexId max_exact_component = 1024);

}  // namespace pg::core
