// Extension: Algorithm 1's structural idea lifted to arbitrary powers G^r.
//
// The engine behind Theorem 1 is that neighborhoods of G are cliques of
// G^2, so covering a whole neighborhood overpays by at most one vertex.
// The same holds for any r >= 2 with balls of radius ⌊r/2⌋: two vertices
// within such a ball are at distance <= 2⌊r/2⌋ <= r, i.e. adjacent in G^r.
// Repeatedly taking balls that still contain more than 1/ε uncovered
// vertices, then solving the sparse remainder exactly, yields a
// centralized (1+ε)-approximation for MVC on G^r for every r >= 2 — the
// natural generalization the paper's Lemma 6 gestures at (its trivial
// cover is the ε -> 1 endpoint of this algorithm).
#pragma once

#include <cstdint>

#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace pg::core {

struct GrMvcResult {
  graph::VertexSet cover;     // vertex cover of G^r
  int centers = 0;            // balls taken in the first phase
  std::size_t phase1_size = 0;
  std::size_t remainder_size = 0;  // vertices left for the exact phase
  bool remainder_optimal = true;
};

/// (1+ε)-approximate minimum vertex cover of G^r (r >= 2, ε in (0, 1]).
/// Runs in polynomial time plus an exact solve on the remainder, which the
/// ball phase has thinned to max ⌊1/ε⌋ uncovered vertices per ball.
GrMvcResult solve_gr_mvc(const graph::Graph& g, int r, double epsilon,
                         std::int64_t exact_node_budget = 50'000'000);

}  // namespace pg::core
