#include "core/mvc_centralized.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "graph/power.hpp"

namespace pg::core {

using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexSet;

namespace {

/// Mutable working copy of the graph with vertex/edge deletion.
class WorkGraph {
 public:
  explicit WorkGraph(GraphView g)
      : adj_(static_cast<std::size_t>(g.num_vertices())),
        alive_(static_cast<std::size_t>(g.num_vertices()), true) {
    g.for_each_edge([&](VertexId u, VertexId v) {
      adj_[static_cast<std::size_t>(u)].insert(v);
      adj_[static_cast<std::size_t>(v)].insert(u);
    });
  }

  VertexId n() const { return static_cast<VertexId>(adj_.size()); }
  bool alive(VertexId v) const { return alive_[static_cast<std::size_t>(v)]; }
  const std::set<VertexId>& neighbors(VertexId v) const {
    return adj_[static_cast<std::size_t>(v)];
  }
  std::size_t degree(VertexId v) const {
    return adj_[static_cast<std::size_t>(v)].size();
  }

  void remove_vertex(VertexId v) {
    if (!alive_[static_cast<std::size_t>(v)]) return;
    alive_[static_cast<std::size_t>(v)] = false;
    for (VertexId u : adj_[static_cast<std::size_t>(v)])
      adj_[static_cast<std::size_t>(u)].erase(v);
    adj_[static_cast<std::size_t>(v)].clear();
  }

  bool has_edge(VertexId u, VertexId v) const {
    return adj_[static_cast<std::size_t>(u)].count(v) > 0;
  }

 private:
  std::vector<std::set<VertexId>> adj_;
  std::vector<bool> alive_;
};

/// Finds one triangle (u < v < w by scan order) or returns false.
bool find_triangle(const WorkGraph& g, VertexId& a, VertexId& b, VertexId& c) {
  for (VertexId u = 0; u < g.n(); ++u) {
    if (!g.alive(u)) continue;
    const auto& nbrs = g.neighbors(u);
    for (auto it = nbrs.begin(); it != nbrs.end(); ++it)
      for (auto jt = std::next(it); jt != nbrs.end(); ++jt)
        if (g.has_edge(*it, *jt)) {
          a = u;
          b = *it;
          c = *jt;
          return true;
        }
  }
  return false;
}

/// Lowest-degree alive vertex with degree <= 3, preferring lower degree
/// (the paper's rule precedence: degree 1 before 2 before 3); degree-0
/// vertices are removed on sight.
VertexId find_low_degree_vertex(WorkGraph& g) {
  for (std::size_t want = 1; want <= 3; ++want) {
    for (VertexId v = 0; v < g.n(); ++v) {
      if (!g.alive(v)) continue;
      if (g.degree(v) == 0) {
        g.remove_vertex(v);
        continue;
      }
      if (g.degree(v) == want) return v;
    }
  }
  return -1;
}

}  // namespace

VertexSet five_thirds_cover(GraphView h, LocalRatioParts* parts) {
  WorkGraph work(h);
  VertexSet cover(h.num_vertices());
  LocalRatioParts sizes;

  auto take = [&](VertexId v, std::size_t& counter) {
    PG_CHECK(work.alive(v), "taking a removed vertex into the cover");
    cover.insert(v);
    ++counter;
    work.remove_vertex(v);
  };

  // --- part 1: triangles -------------------------------------------------
  VertexId a = -1, b = -1, c = -1;
  while (find_triangle(work, a, b, c)) {
    take(a, sizes.s1);
    take(b, sizes.s1);
    take(c, sizes.s1);
  }

  // --- part 2: degrees 1..3 ----------------------------------------------
  for (;;) {
    const VertexId x = find_low_degree_vertex(work);
    if (x == -1) break;
    const std::size_t deg = work.degree(x);
    std::vector<VertexId> nbrs(work.neighbors(x).begin(),
                               work.neighbors(x).end());
    if (deg == 1) {
      take(nbrs[0], sizes.s2);
    } else if (deg == 2) {
      const VertexId y1 = nbrs[0], y2 = nbrs[1];
      // No degree-1 vertices exist, so y1 has a neighbor z != x; z != y2
      // because the graph is triangle-free after part 1.
      VertexId z = -1;
      for (VertexId cand : work.neighbors(y1))
        if (cand != x) {
          z = cand;
          break;
        }
      PG_CHECK(z != -1 && z != y2, "part-2 degree-2 witness missing");
      take(z, sizes.s2);
      if (work.alive(y1)) take(y1, sizes.s2);
      if (work.alive(y2)) take(y2, sizes.s2);
    } else {  // deg == 3
      const VertexId y1 = nbrs[0], y2 = nbrs[1], y3 = nbrs[2];
      // All degrees are >= 3 here, so y1 and y2 have spare neighbors; z1,z2
      // avoid {x, y1, y2, y3} by triangle-freeness, and can be made distinct.
      VertexId z1 = -1;
      for (VertexId cand : work.neighbors(y1))
        if (cand != x) {
          z1 = cand;
          break;
        }
      VertexId z2 = -1;
      for (VertexId cand : work.neighbors(y2))
        if (cand != x && cand != z1) {
          z2 = cand;
          break;
        }
      PG_CHECK(z1 != -1 && z2 != -1, "part-2 degree-3 witnesses missing");
      take(y1, sizes.s2);
      if (work.alive(y2)) take(y2, sizes.s2);
      if (work.alive(y3)) take(y3, sizes.s2);
      if (work.alive(z1)) take(z1, sizes.s2);
      if (work.alive(z2)) take(z2, sizes.s2);
    }
  }

  // --- part 3: maximal matching on the min-degree-4 remainder -------------
  for (VertexId u = 0; u < work.n(); ++u) {
    if (!work.alive(u) || work.degree(u) == 0) continue;
    const VertexId v = *work.neighbors(u).begin();
    take(u, sizes.s3);
    if (work.alive(v)) take(v, sizes.s3);
  }

  if (parts != nullptr) *parts = sizes;
  return cover;
}

VertexSet five_thirds_mvc_of_square(GraphView g, LocalRatioParts* parts) {
  return five_thirds_cover(graph::square(g), parts);
}

}  // namespace pg::core
