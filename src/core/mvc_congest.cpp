#include "core/mvc_congest.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "congest/primitives.hpp"
#include "core/mvc_centralized.hpp"
#include "core/trivial.hpp"
#include "graph/matching.hpp"
#include "graph/ops.hpp"
#include "solvers/exact_vc.hpp"

namespace pg::core {

using congest::Incoming;
using congest::Message;
using congest::Network;
using congest::NodeId;
using congest::NodeView;
using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexSet;

namespace {

// Message tags.
constexpr std::uint8_t kStatus = 1;     // field 0: 1 iff sender is in R
constexpr std::uint8_t kCandidate = 2;  // field 0: r_c draw (0 when unused)
constexpr std::uint8_t kMaxCand = 3;    // field 0: max candidate id <=1 hop
constexpr std::uint8_t kSelect = 4;     // sender was selected as a center
constexpr std::uint8_t kUStatus = 5;    // field 0: 1 iff sender is in U
constexpr std::uint8_t kVote = 6;       // field 0: id of chosen candidate

/// Packs an F-edge token: ((u*n + v) << 2) | (u_in_U << 1) | v_in_U.
std::uint64_t encode_f_edge(std::uint64_t n, VertexId u, VertexId v,
                            bool u_in_u, bool v_in_u) {
  const auto a = static_cast<std::uint64_t>(u);
  const auto b = static_cast<std::uint64_t>(v);
  return (((a * n) + b) << 2) | (static_cast<std::uint64_t>(u_in_u) << 1) |
         static_cast<std::uint64_t>(v_in_u);
}

struct FEdge {
  VertexId u, v;
  bool u_in_u, v_in_u;
};

FEdge decode_f_edge(std::uint64_t n, std::uint64_t token) {
  FEdge e{};
  e.v_in_u = token & 1;
  e.u_in_u = (token >> 1) & 1;
  const std::uint64_t pair = token >> 2;
  e.u = static_cast<VertexId>(pair / n);
  e.v = static_cast<VertexId>(pair % n);
  return e;
}

/// Deterministic Phase I of Algorithm 1 (max-id-in-2-hops symmetry
/// breaking).  Mutates in_r / result.cover; returns when no center with
/// more than l remaining neighbors is left anywhere.
void deterministic_phase1(Network& net, int l, std::vector<char>& in_r,
                          MvcCongestResult& result) {
  const std::size_t n = net.n();
  // Byte flags throughout (never vector<bool>): nodes write their own
  // entry from inside possibly-parallel rounds, and vector<bool> packs 64
  // nodes per word.  Cover joins land in a per-node flag and fold into the
  // shared VertexSet between rounds for the same reason.
  std::vector<char> in_c(n, 1);
  std::vector<char> is_candidate(n, 0);
  std::vector<char> joined(n, 0);
  std::vector<NodeId> max1(n, -1);
  auto fold_joins = [&] {
    for (std::size_t v = 0; v < n; ++v)
      if (joined[v] != 0) {
        result.cover.insert(static_cast<VertexId>(v));
        joined[v] = 0;
      }
  };

  bool any_candidate = true;
  while (any_candidate) {
    // Round 1: apply selections from the previous iteration, then announce
    // R-membership.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      for (const Incoming& in : node.inbox()) {
        if (in.msg.kind == kSelect && in_r[me] != 0) {
          in_r[me] = 0;  // joined S
          joined[me] = 1;
        }
      }
      node.broadcast(Message{kStatus, {in_r[me] != 0 ? 1 : 0}});
    });
    fold_joins();

    // Round 2: count R-neighbors; candidates announce themselves.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      int count = 0;
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kStatus && in.msg.num_fields >= 1 &&
            in.msg.at(0) == 1)
          ++count;
      is_candidate[me] = in_c[me] != 0 && count > l ? 1 : 0;
      if (is_candidate[me] != 0) node.broadcast(Message{kCandidate, {0}});
    });
    // Derived after the barrier instead of set from inside the step: many
    // nodes writing one shared bool is a data race even when every write
    // stores the same value.
    any_candidate = std::any_of(is_candidate.begin(), is_candidate.end(),
                                [](char c) { return c != 0; });
    if (!any_candidate) break;  // quiescence: no centers left anywhere

    // Round 3: spread the max candidate id one hop.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      NodeId best = is_candidate[me] != 0 ? node.id() : -1;
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kCandidate) best = std::max(best, in.from);
      max1[me] = best;
      node.broadcast(Message{kMaxCand, {best}});
    });

    // Round 4: compute the 2-hop max; winners notify their neighborhoods.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      NodeId best = max1[me];
      // Field-count guard + id clamp: adversarial corruption can flip
      // payload bits (an out-of-range id re-broadcast below would blow the
      // bandwidth check at small n) or forge the kind of a field-less
      // message.  Both are identities on fault-free traffic.
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kMaxCand && in.msg.num_fields >= 1)
          best = std::max(best, static_cast<NodeId>(std::clamp<std::int64_t>(
                                    in.msg.at(0), -1,
                                    static_cast<std::int64_t>(n) - 1)));
      if (is_candidate[me] != 0 && best == node.id()) {
        // Selected: N(me) ∩ R joins the cover (learned next round 1).
        in_c[me] = 0;
        node.broadcast(Message{kSelect, {}});
      }
    });
    ++result.iterations;
  }
}

/// Randomized voting Phase I (Section 3.3) in plain CONGEST: candidates
/// with d_R > 8/ε + 2 draw r_c ∈ [n^4]; R-vertices vote for the
/// highest-draw candidate neighbor; winners (>= d_R/8 votes) take their
/// neighborhoods.  O(log n) phases w.h.p.; a deterministic fallback caps
/// the loop.
void randomized_phase1(Network& net, double epsilon, Rng& rng,
                       std::vector<char>& in_r, MvcCongestResult& result) {
  const std::size_t n = net.n();
  const int threshold = static_cast<int>(std::ceil(8.0 / epsilon)) + 2;
  const std::uint64_t r_range = static_cast<std::uint64_t>(n) * n * n * n;
  const int phase_cap =
      200 *
      (static_cast<int>(std::ceil(std::log2(std::max<double>(n, 2)))) + 1);

  // Byte flags, not vector<bool> — written per-node from inside the
  // (possibly parallel) rounds.  Cover joins fold between rounds.
  std::vector<char> in_c(n, 1);
  std::vector<char> is_candidate(n, 0);
  std::vector<char> joined(n, 0);
  std::vector<int> r_deg(n, 0);
  std::vector<std::int64_t> draw(n, 0);
  auto fold_joins = [&] {
    for (std::size_t v = 0; v < n; ++v)
      if (joined[v] != 0) {
        result.cover.insert(static_cast<VertexId>(v));
        joined[v] = 0;
      }
  };

  bool any_candidate = true;
  int phases = 0;
  while (any_candidate && phases < phase_cap) {
    // Round 1: apply takes, announce R status.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kSelect && in_r[me] != 0) {
          in_r[me] = 0;
          joined[me] = 1;
        }
      node.broadcast(Message{kStatus, {in_r[me] != 0 ? 1 : 0}});
    });
    fold_joins();

    // Round 2: update d_R; below-threshold centers retire; candidates
    // draw and announce.  Whether a center survives this round depends on
    // the inbox, so the draw condition is not known before the round;
    // instead every still-active center consumes one pre-round draw (a
    // retiring center's draw simply goes unused).  The coin schedule is
    // therefore a deterministic function of (seed, topology) alone —
    // independent of the thread count and of the inter-node execution
    // order the parallel engine no longer fixes.
    for (std::size_t v = 0; v < n; ++v)
      if (in_c[v] != 0)
        draw[v] = static_cast<std::int64_t>(rng.next_below(r_range));
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      int count = 0;
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kStatus && in.msg.num_fields >= 1 &&
            in.msg.at(0) == 1)
          ++count;
      r_deg[me] = count;
      if (in_c[me] != 0 && count <= threshold) in_c[me] = 0;
      is_candidate[me] = in_c[me];
      if (is_candidate[me] != 0)
        node.broadcast(Message{kCandidate, {draw[me]}});
    });
    any_candidate = std::any_of(is_candidate.begin(), is_candidate.end(),
                                [](char c) { return c != 0; });
    if (!any_candidate) break;

    // Round 3: R-vertices vote for the highest-draw candidate neighbor and
    // inform all their candidate neighbors (distinct per-edge messages).
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      if (in_r[me] == 0) return;
      NodeId chosen = -1;
      std::int64_t chosen_draw = -1;
      std::vector<std::uint32_t> candidate_slots;
      for (const Incoming& in : node.inbox()) {
        if (in.msg.kind != kCandidate || in.msg.num_fields < 1) continue;
        candidate_slots.push_back(in.reply_slot);
        if (in.msg.at(0) > chosen_draw ||
            (in.msg.at(0) == chosen_draw && in.from > chosen)) {
          chosen_draw = in.msg.at(0);
          chosen = in.from;
        }
      }
      for (std::uint32_t c : candidate_slots)
        node.send_slot(c, Message{kVote, {chosen}});
    });

    // Round 4: winners take their whole remaining neighborhood.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      if (is_candidate[me] == 0) return;
      int votes = 0;
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kVote && in.msg.num_fields >= 1 &&
            in.msg.at(0) == node.id())
          ++votes;
      if (8 * votes >= r_deg[me] && votes > 0) {
        in_c[me] = 0;
        node.broadcast(Message{kSelect, {}});
      }
    });
    ++phases;
    ++result.iterations;
  }

  if (any_candidate) {
    // Safety net (never expected): finish deterministically.
    const int l = static_cast<int>(std::ceil(1.0 / epsilon));
    deterministic_phase1(net, l, in_r, result);
  } else {
    // Drain take messages possibly still in flight from the final phase.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kSelect && in_r[me] != 0) {
          in_r[me] = 0;
          joined[me] = 1;
        }
    });
    fold_joins();
  }
}

/// Phase II of Algorithm 1: ship F to an elected leader over a BFS tree
/// (Lemma 2), rebuild H = G^2[U] (Lemma 3), solve, broadcast R*.
void run_phase2(Network& net, const std::vector<char>& in_u,
                const MvcCongestConfig& config, MvcCongestResult& result) {
  const std::size_t n = net.n();
  std::vector<std::vector<std::uint64_t>> tokens(n);
  net.round([&](NodeView& node) {
    const auto me = static_cast<std::size_t>(node.id());
    node.broadcast(Message{kUStatus, {in_u[me] != 0 ? 1 : 0}});
  });
  net.round([&](NodeView& node) {
    const auto me = static_cast<std::size_t>(node.id());
    for (const Incoming& in : node.inbox()) {
      if (in.msg.kind != kUStatus || in.msg.num_fields < 1) continue;
      const bool nbr_in_u = in.msg.at(0) == 1;
      if (nbr_in_u)  // v is responsible for its edges into U (Lemma 2)
        tokens[me].push_back(
            encode_f_edge(n, node.id(), in.from, in_u[me] != 0, nbr_in_u));
    }
  });

  const NodeId leader = congest::elect_min_id_leader(net);
  const congest::BfsTree tree = congest::build_bfs_tree(net, leader);
  const std::vector<std::uint64_t> raw =
      congest::upcast_tokens(net, tree, std::move(tokens));

  // --- leader-local computation (free in the CONGEST model) --------------
  std::set<std::pair<VertexId, VertexId>> f_edges;
  std::vector<bool> known_in_u(n, false);
  std::map<VertexId, std::vector<VertexId>> u_neighbors;  // w -> N(w) ∩ U
  const bool adversarial = net.faults_active();
  for (std::uint64_t token : raw) {
    // A corrupted kToken payload decodes to arbitrary ids; indexing the
    // leader's tables with them would be out of bounds, so out-of-range
    // tokens are rejected — an invariant violation unless an adversary is
    // active, in which case the degraded cover goes to the certifier.
    if ((token >> 2) / n >= n) {
      PG_CHECK(adversarial, "F-edge token out of range");
      continue;
    }
    const FEdge e = decode_f_edge(n, token);
    const auto key = std::minmax(e.u, e.v);
    f_edges.insert({key.first, key.second});
    if (e.u_in_u) {
      known_in_u[static_cast<std::size_t>(e.u)] = true;
      u_neighbors[e.v].push_back(e.u);
    }
    if (e.v_in_u) {
      known_in_u[static_cast<std::size_t>(e.v)] = true;
      u_neighbors[e.u].push_back(e.v);
    }
  }
  result.f_edge_count = f_edges.size();

  std::vector<VertexId> u_list;
  for (std::size_t v = 0; v < n; ++v)
    if (known_in_u[v]) u_list.push_back(static_cast<VertexId>(v));
  result.remainder_size = u_list.size();

  std::vector<VertexId> to_h(n, -1);
  for (std::size_t i = 0; i < u_list.size(); ++i)
    to_h[static_cast<std::size_t>(u_list[i])] = static_cast<VertexId>(i);

  graph::GraphBuilder h_builder(static_cast<VertexId>(u_list.size()));
  for (const auto& [u, v] : f_edges) {  // direct edges inside U
    if (to_h[static_cast<std::size_t>(u)] != -1 &&
        to_h[static_cast<std::size_t>(v)] != -1)
      h_builder.add_edge(to_h[static_cast<std::size_t>(u)],
                         to_h[static_cast<std::size_t>(v)]);
  }
  for (auto& [w, nbrs] : u_neighbors) {  // pairs through a common neighbor
    (void)w;
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      for (std::size_t j = i + 1; j < nbrs.size(); ++j)
        h_builder.add_edge(to_h[static_cast<std::size_t>(nbrs[i])],
                           to_h[static_cast<std::size_t>(nbrs[j])]);
  }
  const Graph h = std::move(h_builder).build();

  VertexSet h_cover(h.num_vertices());
  switch (config.leader_solver) {
    case LeaderSolver::kExact: {
      const solvers::ExactResult exact =
          solvers::solve_mvc(h, config.exact_node_budget);
      result.leader_solution_optimal = exact.optimal;
      h_cover = exact.solution;
      break;
    }
    case LeaderSolver::kFiveThirds:
      h_cover = five_thirds_cover(h);
      result.leader_solution_optimal = false;
      break;
    case LeaderSolver::kTwoApprox:
      h_cover = graph::matching_vertex_cover(h);
      result.leader_solution_optimal = false;
      break;
  }

  // --- broadcast R* down the tree ----------------------------------------
  std::vector<std::uint64_t> solution_tokens;
  for (VertexId hv : h_cover.to_vector())
    solution_tokens.push_back(
        static_cast<std::uint64_t>(u_list[static_cast<std::size_t>(hv)]));
  const auto received = congest::downcast_tokens(net, tree, solution_tokens);
  for (std::size_t v = 0; v < n; ++v)
    for (std::uint64_t token : received[v])
      if (token == v) result.cover.insert(static_cast<VertexId>(v));
}

/// Common driver: trivial-cover early-outs, Phase I via `phase1`, Phase II.
/// Runs on a caller-provided simulator (rewound first), so one Network can
/// serve many runs.
template <typename Phase1>
MvcCongestResult run_algorithm1(Network& net, const MvcCongestConfig& config,
                                Phase1&& phase1) {
  net.reset();
  GraphView g = net.topology();
  PG_REQUIRE(config.epsilon > 0, "epsilon must be positive");
  PG_REQUIRE(graph::is_connected(g), "Theorem 1 assumes a connected network");
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());

  MvcCongestResult result;
  result.cover = VertexSet(g.num_vertices());

  // ε > 1: the all-vertices cover is already a 2 <= (1+ε)-approximation
  // (Lemma 6) and needs no communication.
  if (config.epsilon >= 1.0) {
    result.cover = trivial_power_cover(g);
    result.epsilon_inverse = 1;
    return result;
  }
  result.epsilon_inverse =
      static_cast<int>(std::ceil(1.0 / config.epsilon));

  std::vector<char> in_r(n, 1);
  phase1(net, in_r, result);
  result.phase1_rounds = net.stats().rounds;
  result.phase1_cover_size = result.cover.size();

  run_phase2(net, in_r, config, result);  // U = V \ S = R
  result.phase2_rounds = net.stats().rounds - result.phase1_rounds;
  result.stats = net.stats();
  return result;
}

}  // namespace

MvcCongestResult solve_g2_mvc_congest(Network& net,
                                      const MvcCongestConfig& config) {
  return run_algorithm1(
      net, config,
      [&](Network& inner, std::vector<char>& in_r, MvcCongestResult& result) {
        deterministic_phase1(inner, result.epsilon_inverse, in_r, result);
      });
}

MvcCongestResult solve_g2_mvc_congest(GraphView g,
                                      const MvcCongestConfig& config) {
  Network net(g);
  return solve_g2_mvc_congest(net, config);
}

MvcCongestResult solve_g2_mvc_congest_randomized(
    Network& net, Rng& rng, const MvcCongestConfig& config) {
  return run_algorithm1(
      net, config,
      [&](Network& inner, std::vector<char>& in_r, MvcCongestResult& result) {
        randomized_phase1(inner, config.epsilon, rng, in_r, result);
      });
}

MvcCongestResult solve_g2_mvc_congest_randomized(
    GraphView g, Rng& rng, const MvcCongestConfig& config) {
  Network net(g);
  return solve_g2_mvc_congest_randomized(net, rng, config);
}

}  // namespace pg::core
