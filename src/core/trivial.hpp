// Lemma 6: in G^r (connected G, n vertices), every vertex cover has size at
// least n - n/(⌊r/2⌋ + 1), so taking all vertices is a zero-round
// (1 + 1/⌊r/2⌋)-approximation for unweighted MVC on G^r.
#pragma once

#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace pg::core {

/// The all-vertices cover (the "0-round algorithm").
graph::VertexSet trivial_power_cover(graph::GraphView g);

/// Lemma 6's lower bound on |OPT(G^r)|: n - n/(⌊r/2⌋+1), rounded the safe
/// way (this is a bound on an integer quantity).
double trivial_cover_opt_lower_bound(graph::VertexId n, int r);

/// The guaranteed approximation factor of the trivial cover: 1 + 1/⌊r/2⌋.
double trivial_cover_guarantee(int r);

}  // namespace pg::core
