// Dangling-path reductions between problems on G and on squares, and the
// Theorem 26 conditional-hardness pipeline.
//
//  * reduce_mvc_to_square (Theorems 26/44): every edge e = {u,v} of G is
//    replaced by a 3-vertex dangling path p1-p2-p3 with p1 adjacent to both
//    u and v.  Then VC(H^2) = VC(G) + 2|E(G)| and any VC of H^2 restricted
//    to the original vertices covers G.
//
//  * reduce_mds_to_square (Theorem 45): same per-edge gadgets, but merged —
//    each edge keeps private p1,p2 while all gadgets share one common tail
//    3-4-5.  Then MDS(H^2) = MDS(G) + 1.
//
//  * conditional_mvc_approx (Theorem 26): converts any (1+ε)-approximation
//    for G^2-MVC into a (1+δ)-approximation for G-MVC: take a rough
//    2-approximation; if the optimum is small (γ < β) solve exactly with
//    the parameterized solver ([BBiKS19] stand-in), otherwise run the G^2
//    algorithm on the gadget graph H with ε = δ·n^β/(3m) and keep the
//    original vertices of its cover.
#pragma once

#include <cstdint>

#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace pg::core {

struct SquareReduction {
  graph::Graph h;
  graph::VertexId original_vertices = 0;  // ids [0, n) of h are V(G)
  std::size_t num_gadgets = 0;            // = |E(G)| for both reductions
};

/// Theorem 26/44 gadget graph: VC(H^2) = VC(G) + 2|E(G)|.
SquareReduction reduce_mvc_to_square(graph::GraphView g);

/// Theorem 45 gadget graph (merged tail): MDS(H^2) = MDS(G) + 1.
/// Requires |E(G)| >= 1.
SquareReduction reduce_mds_to_square(graph::GraphView g);

/// Restricts a vertex cover of H^2 to the original vertices; the result is
/// always a vertex cover of G (every G-edge is an H^2-edge between
/// originals whose gadget neighbors cover nothing across it).
graph::VertexSet restrict_cover_to_original(const SquareReduction& reduction,
                                            const graph::VertexSet& h2_cover);

struct ConditionalResult {
  graph::VertexSet cover;                // vertex cover of G
  bool used_parameterized_branch = false;  // the γ < β branch
  double gamma = 0;
  double beta = 0;
  double epsilon_used = 0;               // ε handed to the G^2 algorithm
  std::size_t h_vertices = 0;            // size of the gadget graph (if used)
  std::int64_t simulated_rounds = 0;     // measured rounds of ALG on H
};

/// The Theorem 26 pipeline with our Theorem 1 algorithm playing ALG.
/// `alpha` is the exponent assumed for ALG's O(n^α/ε) running time (ours
/// is 1); δ ∈ (0,1) is the target approximation slack for G.
ConditionalResult conditional_mvc_approx(graph::GraphView g, double delta,
                                         double alpha = 1.0);

/// Theorem 44's FPTAS-refutation experiment: runs the (1+ε) G^2 algorithm
/// on the gadget graph with ε = 1/(3|E|); the restricted cover is an
/// *exact* minimum vertex cover of G.
graph::VertexSet exact_mvc_via_g2_fptas(graph::GraphView g);

}  // namespace pg::core
