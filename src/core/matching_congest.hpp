// Distributed maximal matching in CONGEST — the classic 2-approximation
// for MVC on the communication graph G itself (Gavril).  Serves as the
// "rough constant-factor approximation" stage of the Theorem 26 pipeline
// in distributed form, and as the baseline the paper's related-work
// section measures G-MVC algorithms against.
//
// Protocol (proposal rounds): every unmatched vertex proposes to its
// smallest-id unmatched neighbor; mutual proposals (or accepted one-sided
// proposals, resolved by id) create matched pairs, which announce
// themselves.  Each round matches at least one vertex pair incident to
// every "locally minimal" edge, so the loop terminates after at most n/2
// selecting rounds with a maximal matching.
#pragma once

#include "congest/network.hpp"
#include "graph/cover.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace pg::core {

struct MatchingCongestResult {
  std::vector<graph::Edge> matching;  // maximal in G
  graph::VertexSet cover;             // both endpoints: 2-approx G-MVC
  congest::RoundStats stats;
  int proposal_rounds = 0;
};

MatchingCongestResult solve_maximal_matching_congest(graph::GraphView g);

/// Caller-owned-simulator overload: rewinds `net` via Network::reset() and
/// runs on its topology, so batch drivers reuse one simulator per worker.
MatchingCongestResult solve_maximal_matching_congest(congest::Network& net);

}  // namespace pg::core
