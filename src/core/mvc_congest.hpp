// Theorem 1: a deterministic CONGEST algorithm computing a (1+ε)-approximate
// minimum vertex cover of G^2 in O(n/ε) rounds, where G is the
// communication network.
//
// Phase I repeatedly lets a center c that still has more than 1/ε'
// neighbors outside the cover (ε' = 1/⌈1/ε⌉) add its whole remaining
// neighborhood N(c)∩R — a clique in G^2 — to the cover; symmetry is broken
// by selecting candidates that hold the maximum id in their 2-hop
// neighborhood (Lemma 5 gives the (1+ε') charge).  Phase II ships the O(n/ε)
// remaining edges F to a leader over a BFS tree (Lemma 2), which
// reconstructs H = G^2[U] locally (Lemma 3), solves it, and broadcasts the
// solution.
//
// Round counts are measured by the simulator and include leader election,
// tree construction, and pipelining.
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/cover.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace pg::core {

enum class LeaderSolver {
  kExact,       // optimal VC of H (Theorem 1 as stated)
  kFiveThirds,  // centralized 5/3-approximation (Corollary 17)
  kTwoApprox,   // maximal-matching 2-approximation (cheap baseline)
};

struct MvcCongestConfig {
  double epsilon = 0.5;
  LeaderSolver leader_solver = LeaderSolver::kExact;
  std::int64_t exact_node_budget = 50'000'000;
};

struct MvcCongestResult {
  graph::VertexSet cover;        // S ∪ R*
  congest::RoundStats stats;     // total measured rounds/messages/bits
  std::int64_t phase1_rounds = 0;
  std::int64_t phase2_rounds = 0;
  int iterations = 0;            // Phase I iterations that selected centers
  std::size_t phase1_cover_size = 0;  // |S|
  std::size_t remainder_size = 0;     // |U|
  std::size_t f_edge_count = 0;       // |F| (deduplicated)
  int epsilon_inverse = 0;            // l = ⌈1/ε⌉ (threshold parameter)
  bool leader_solution_optimal = true;
};

/// Runs Algorithm 1 on a connected input graph.  For ε >= 1, returns the
/// trivial all-vertices cover (a 0-round 2-approximation; see Lemma 6).
MvcCongestResult solve_g2_mvc_congest(graph::GraphView g,
                                      const MvcCongestConfig& config = {});

/// Same, on a caller-owned simulator (rewound via Network::reset() first),
/// so batch drivers can run many configurations on one topology without
/// reallocating the simulator's buffers.
MvcCongestResult solve_g2_mvc_congest(congest::Network& net,
                                      const MvcCongestConfig& config = {});

/// Section 3.3's randomized voting scheme run in plain CONGEST: Phase I
/// finishes in O(log n) phases w.h.p. instead of O(εn) iterations (every
/// message travels along G edges, so the clique is not needed), while
/// Phase II still pays the Θ(n/ε) pipelining — which is why, as the paper
/// notes, the total CONGEST complexity does not improve.  Exposed so the
/// phase-count speedup is measurable on its own.
MvcCongestResult solve_g2_mvc_congest_randomized(
    graph::GraphView g, Rng& rng, const MvcCongestConfig& config = {});

/// Caller-owned-simulator overload (see solve_g2_mvc_congest above).
MvcCongestResult solve_g2_mvc_congest_randomized(
    congest::Network& net, Rng& rng, const MvcCongestConfig& config = {});

}  // namespace pg::core
