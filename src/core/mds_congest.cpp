#include "core/mds_congest.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "core/estimator.hpp"
#include "graph/ops.hpp"

namespace pg::core {

using congest::Incoming;
using congest::Message;
using congest::Network;
using congest::NodeId;
using congest::NodeView;
using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexSet;

namespace {

constexpr std::uint8_t kRho = 41;      // field 0: rounded density
constexpr std::uint8_t kCandDraw = 42; // fields: r_v
constexpr std::uint8_t kMinCand = 43;  // fields: best (r, id) within 1 hop
constexpr std::uint8_t kVoteW = 44;    // fields: candidate id, quantized draw
constexpr std::uint8_t kVoteMin = 45;  // fields: quantized min (to candidate)
constexpr std::uint8_t kJoined = 46;   // sender joined the dominating set
constexpr std::uint8_t kCovered1 = 47; // sender is within 1 hop of the set

// Rounded densities are 0 or an exact power of two, so they live in the
// per-node arrays as one-byte codes (0 for zero, k+1 for 2^k).  The code
// order matches the value order — maxima and the candidate test compare
// codes directly — and messages decode back to the exact int64 payloads
// the unencoded representation carried.
std::uint8_t round_up_to_power_of_two_code(double x) {
  if (x < 0.75) return 0;
  int e = 0;
  while (static_cast<double>(std::int64_t{1} << e) < x) ++e;
  return static_cast<std::uint8_t>(e + 1);
}

std::uint8_t density_code(std::int64_t value) {
  return static_cast<std::uint8_t>(
      std::bit_width(static_cast<std::uint64_t>(value)));
}

std::int64_t density_value(std::uint8_t code) {
  return code == 0 ? 0 : std::int64_t{1} << (code - 1);
}

}  // namespace

MdsCongestResult solve_g2_mds_congest(GraphView g, Rng& rng,
                                      const MdsCongestConfig& config) {
  Network net(g);
  return solve_g2_mds_congest(net, rng, config);
}

MdsCongestResult solve_g2_mds_congest(Network& net, Rng& rng,
                                      const MdsCongestConfig& config) {
  net.reset();
  GraphView g = net.topology();
  PG_REQUIRE(graph::is_connected(g), "Theorem 28 assumes a connected network");
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  MdsCongestResult result;
  result.dominating_set = VertexSet(g.num_vertices());
  if (n == 0) return result;
  if (n == 1) {
    result.dominating_set.insert(0);
    return result;
  }

  const int log_n =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(n))));
  const int max_phases =
      config.max_phases > 0 ? config.max_phases : 40 * (log_n + 1);
  const std::uint64_t r_range = static_cast<std::uint64_t>(n) * n * n * n;

  // Defensive caps for adversarial traffic: corrupted payloads are clamped
  // back into the legal domain so relayed values still pass the bandwidth
  // check at small n and density codes cannot shift past 2^62.  Both caps
  // are identities on fault-free traffic.
  const bool adversarial = net.faults_active();
  const std::int64_t max_draw = static_cast<std::int64_t>(
      std::min<std::uint64_t>(r_range - 1, std::uint64_t{1} << 62));
  const auto rho_code_cap =
      static_cast<std::uint8_t>(std::min(62, net.bandwidth() - 9));

  // Byte flags, not vector<bool>: nodes write their own entry from inside
  // (possibly parallel) rounds, and vector<bool> packs 64 nodes per word.
  std::vector<char> covered(n, 0);
  std::vector<std::uint8_t> rho(n, 0);
  std::vector<NodeId> vote_of(n, -1);

  // Fixed-point quantizer settings mirrored from the estimator: the voting
  // minima reuse the same idea but carry an explicit candidate id.
  // The voting message carries a candidate id (≈ bandwidth/16 bits) next
  // to the sample, so its fixed-point payload is a little narrower.
  const int qbits =
      std::clamp(net.bandwidth() - 9 - net.bandwidth() / 16 - 1, 6, 32);
  const std::int64_t qscale = std::int64_t{1} << (qbits - 4);
  const std::int64_t qinf = (std::int64_t{1} << qbits) - 1;
  auto qencode = [&](double w) {
    const double scaled = w * static_cast<double>(qscale);
    if (scaled >= static_cast<double>(qinf)) return qinf;
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(scaled));
  };
  auto qdecode = [&](std::int64_t q) {
    return static_cast<double>(q) / static_cast<double>(qscale);
  };
  const int samples =
      config.estimator_samples > 0 ? config.estimator_samples : 3 * log_n + 8;

  auto all_covered = [&]() {
    return std::all_of(covered.begin(), covered.end(),
                       [](char c) { return c != 0; });
  };

  // Phase-loop scratch, hoisted: at n = 10⁵⁺ re-allocating these every
  // phase is measurable churn, and the per-node candidate lists below are
  // the structures whose capacity is worth keeping across phases.
  std::vector<bool> uncovered(n);
  std::vector<std::uint8_t> best_rho(n);
  std::vector<bool> is_candidate(n);
  std::vector<std::int64_t> draw(n);
  std::vector<std::pair<std::int64_t, NodeId>> best1(n);
  std::vector<double> vote_sum(n);
  std::vector<std::uint16_t> vote_samples_seen(n);
  // Quantized draws fit 32 bits (qbits clamps at 32), so the voting
  // arrays store them narrow; messages still carry int64.
  std::vector<std::uint32_t> voter_draw(n);
  std::vector<std::uint32_t> direct_min(n);
  std::vector<char> joined(n);
  // Candidate neighbors of each node as (id, adjacency slot, forwarded
  // minimum).  The entries double as the per-sample vote-forwarding
  // accumulator (min = 0 marks "no vote seen" — qencode never returns 0,
  // so the sentinel is out of band), replacing a per-node std::map whose
  // node churn dominated the cell's heap at large n.
  // Inbox order is sender-ascending, so each list is sorted by id.
  struct CandidateNeighbor {
    NodeId id;
    std::uint32_t slot;
    std::uint32_t min;
  };
  std::vector<std::vector<CandidateNeighbor>> candidate_neighbors(n);

  while (!all_covered() && result.phases < max_phases) {
    ++result.phases;

    // --- step 1: estimate densities --------------------------------------
    for (std::size_t v = 0; v < n; ++v) uncovered[v] = covered[v] == 0;
    const EstimateResult density =
        estimate_two_hop_counts(net, uncovered, rng, config.estimator_samples);
    for (std::size_t v = 0; v < n; ++v)
      rho[v] = round_up_to_power_of_two_code(density.estimate[v]);

    // --- step 2: candidates = 4-hop maxima of ρ ---------------------------
    best_rho.assign(rho.begin(), rho.end());
    auto fold_rho = [&](std::size_t me, const Incoming& in) {
      if (in.msg.kind != kRho || in.msg.num_fields < 1) return;
      std::uint8_t code = density_code(in.msg.at(0));
      if (adversarial) code = std::min(code, rho_code_cap);
      best_rho[me] = std::max(best_rho[me], code);
    };
    for (int hop = 0; hop < 4; ++hop) {
      net.round([&](NodeView& node) {
        const auto me = static_cast<std::size_t>(node.id());
        for (const Incoming& in : node.inbox()) fold_rho(me, in);
        node.broadcast(Message{kRho, {density_value(best_rho[me])}});
      });
    }
    net.round([&](NodeView& node) {  // absorb the last hop
      const auto me = static_cast<std::size_t>(node.id());
      for (const Incoming& in : node.inbox()) fold_rho(me, in);
    });
    for (std::size_t v = 0; v < n; ++v)
      is_candidate[v] = rho[v] >= 1 && rho[v] >= best_rho[v];

    // --- step 3: voting ----------------------------------------------------
    draw.assign(n, -1);
    // Draws hoisted out of the round: the serial engine consumed them in
    // ascending node order inside the step, so pre-drawing here preserves
    // the exact byte stream while keeping the shared Rng off the round
    // workers (candidacy is fixed before the round, so the draw set is
    // identical).
    for (std::size_t v = 0; v < n; ++v)
      if (is_candidate[v])
        draw[v] = static_cast<std::int64_t>(rng.next_below(r_range));
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      candidate_neighbors[me].clear();
      if (is_candidate[me]) node.broadcast(Message{kCandDraw, {draw[me]}});
    });
    // best (r, id) seen within 1 hop, then spread one more hop.
    best1.assign(n, {std::numeric_limits<std::int64_t>::max(), -1});
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      auto& best = best1[me];
      if (is_candidate[me]) best = {draw[me], node.id()};
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kCandDraw && in.msg.num_fields >= 1) {
          candidate_neighbors[me].push_back({in.from, in.reply_slot, 0});
          std::int64_t r = in.msg.at(0);
          if (adversarial) r = std::clamp<std::int64_t>(r, 0, max_draw);
          best = std::min(best, {r, in.from});
        }
      if (best.second != -1)
        node.broadcast(Message{kMinCand, {best.first, best.second}});
    });
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      auto best = best1[me];
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kMinCand && in.msg.num_fields >= 2)
          best = std::min(
              best,
              {in.msg.at(0), static_cast<NodeId>(std::clamp<std::int64_t>(
                                 in.msg.at(1), -1,
                                 static_cast<std::int64_t>(n) - 1))});
      vote_of[me] = covered[me] != 0 ? -1 : best.second;
    });

    // --- step 4: estimate votes per candidate (3-round cadence) -----------
    vote_sum.assign(n, 0.0);
    vote_samples_seen.assign(n, 0);
    voter_draw.assign(n, qinf);
    for (int j = 0; j < samples; ++j) {
      // r1: voters broadcast (candidate, draw).  Same hoist as step 3:
      // the voter set is fixed before the round, so drawing serially in
      // node order reproduces the serial engine's Rng stream exactly.
      for (std::size_t v = 0; v < n; ++v)
        voter_draw[v] = static_cast<std::uint32_t>(
            vote_of[v] == -1 ? qinf : qencode(rng.next_exponential()));
      net.round([&](NodeView& node) {
        const auto me = static_cast<std::size_t>(node.id());
        if (vote_of[me] == -1) return;
        node.broadcast(Message{kVoteW, {vote_of[me], voter_draw[me]}});
      });
      // r2: forwarders compute per-candidate minima; candidates absorb
      // direct votes.  Only votes for *adjacent* candidates can be
      // forwarded (non-adjacent ones have no delivery slot), so the
      // accumulator is the candidate-neighbor list itself: a sorted
      // array with min = -1 meaning "no vote seen", reproducing the
      // presence semantics of the std::map it replaced (a legal vote may
      // equal qinf, so the sentinel must be out of band).
      net.round([&](NodeView& node) {
        const auto me = static_cast<std::size_t>(node.id());
        auto& cands = candidate_neighbors[me];
        for (CandidateNeighbor& c : cands) c.min = 0;
        std::int64_t direct = qinf;
        if (vote_of[me] == static_cast<NodeId>(node.id()) &&
            vote_of[me] != -1)
          direct = std::min<std::int64_t>(direct, voter_draw[me]);
        for (const Incoming& in : node.inbox()) {
          if (in.msg.kind != kVoteW || in.msg.num_fields < 2) continue;
          const auto cand = static_cast<NodeId>(in.msg.at(0));
          const std::int64_t q =
              std::clamp(in.msg.at(1), std::int64_t{1}, qinf);
          if (cand == node.id()) {
            direct = std::min(direct, q);
            continue;
          }
          const auto it = std::lower_bound(
              cands.begin(), cands.end(), cand,
              [](const CandidateNeighbor& c, NodeId id) { return c.id < id; });
          if (it != cands.end() && it->id == cand)
            it->min = static_cast<std::uint32_t>(
                it->min == 0 ? q : std::min<std::int64_t>(it->min, q));
        }
        // Stash the direct minimum for round 3.
        if (is_candidate[me])
          direct_min[me] = static_cast<std::uint32_t>(direct);
        for (const CandidateNeighbor& c : cands)
          if (c.min != 0)
            node.send_slot(c.slot,
                           Message{kVoteMin, {static_cast<std::int64_t>(c.min)}});
      });
      // r3: candidates fold direct + forwarded minima into the estimate.
      net.round([&](NodeView& node) {
        const auto me = static_cast<std::size_t>(node.id());
        if (!is_candidate[me]) return;
        std::int64_t best = direct_min[me];
        for (const Incoming& in : node.inbox())
          if (in.msg.kind == kVoteMin && in.msg.num_fields >= 1)
            best = std::min(best,
                            std::clamp(in.msg.at(0), std::int64_t{1}, qinf));
        if (best < qinf) {
          vote_sum[me] += qdecode(best);
          ++vote_samples_seen[me];
        }
      });
    }

    // --- step 5: join and flood coverage ----------------------------------
    // Joins land in a per-node flag and fold into the (shared) result
    // bitset between rounds: VertexSet::insert packs many nodes per word,
    // so it cannot be written from concurrent steps.
    joined.assign(n, 0);
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      if (!is_candidate[me]) return;
      const double votes = vote_sum[me] > 0
                               ? static_cast<double>(samples) / vote_sum[me]
                               : 0.0;
      if (votes + 1e-12 >= density.estimate[me] / 8.0 && votes > 0) {
        joined[me] = 1;
        covered[me] = 1;
        node.broadcast(Message{kJoined, {}});
      }
    });
    for (std::size_t v = 0; v < n; ++v)
      if (joined[v] != 0) result.dominating_set.insert(static_cast<VertexId>(v));
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      bool near = result.dominating_set.contains(node.id());
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kJoined) near = true;
      if (near) {
        covered[me] = 1;
        node.broadcast(Message{kCovered1, {}});
      }
    });
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kCovered1) covered[me] = 1;
    });
  }

  if (!all_covered()) {
    // Deterministic safety net: uncovered vertices dominate themselves.
    result.used_fallback = true;
    for (std::size_t v = 0; v < n; ++v)
      if (covered[v] == 0) {
        result.dominating_set.insert(static_cast<VertexId>(v));
        covered[v] = 1;
      }
  }

  result.stats = net.stats();
  return result;
}

}  // namespace pg::core
