#include "core/mds_congest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "core/estimator.hpp"
#include "graph/ops.hpp"

namespace pg::core {

using congest::Incoming;
using congest::Message;
using congest::Network;
using congest::NodeId;
using congest::NodeView;
using graph::Graph;
using graph::VertexId;
using graph::VertexSet;

namespace {

constexpr std::uint8_t kRho = 41;      // field 0: rounded density
constexpr std::uint8_t kCandDraw = 42; // fields: r_v
constexpr std::uint8_t kMinCand = 43;  // fields: best (r, id) within 1 hop
constexpr std::uint8_t kVoteW = 44;    // fields: candidate id, quantized draw
constexpr std::uint8_t kVoteMin = 45;  // fields: quantized min (to candidate)
constexpr std::uint8_t kJoined = 46;   // sender joined the dominating set
constexpr std::uint8_t kCovered1 = 47; // sender is within 1 hop of the set

std::int64_t round_up_to_power_of_two(double x) {
  if (x < 0.75) return 0;
  std::int64_t p = 1;
  while (static_cast<double>(p) < x) p *= 2;
  return p;
}

}  // namespace

MdsCongestResult solve_g2_mds_congest(const Graph& g, Rng& rng,
                                      const MdsCongestConfig& config) {
  Network net(g);
  return solve_g2_mds_congest(net, rng, config);
}

MdsCongestResult solve_g2_mds_congest(Network& net, Rng& rng,
                                      const MdsCongestConfig& config) {
  net.reset();
  const Graph& g = net.topology();
  PG_REQUIRE(graph::is_connected(g), "Theorem 28 assumes a connected network");
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  MdsCongestResult result;
  result.dominating_set = VertexSet(g.num_vertices());
  if (n == 0) return result;
  if (n == 1) {
    result.dominating_set.insert(0);
    return result;
  }

  const int log_n =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(n))));
  const int max_phases =
      config.max_phases > 0 ? config.max_phases : 40 * (log_n + 1);
  const std::uint64_t r_range = static_cast<std::uint64_t>(n) * n * n * n;

  // Byte flags, not vector<bool>: nodes write their own entry from inside
  // (possibly parallel) rounds, and vector<bool> packs 64 nodes per word.
  std::vector<char> covered(n, 0);
  std::vector<std::int64_t> rho(n, 0);
  std::vector<NodeId> vote_of(n, -1);

  // Fixed-point quantizer settings mirrored from the estimator: the voting
  // minima reuse the same idea but carry an explicit candidate id.
  // The voting message carries a candidate id (≈ bandwidth/16 bits) next
  // to the sample, so its fixed-point payload is a little narrower.
  const int qbits =
      std::clamp(net.bandwidth() - 9 - net.bandwidth() / 16 - 1, 6, 32);
  const std::int64_t qscale = std::int64_t{1} << (qbits - 4);
  const std::int64_t qinf = (std::int64_t{1} << qbits) - 1;
  auto qencode = [&](double w) {
    const double scaled = w * static_cast<double>(qscale);
    if (scaled >= static_cast<double>(qinf)) return qinf;
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(scaled));
  };
  auto qdecode = [&](std::int64_t q) {
    return static_cast<double>(q) / static_cast<double>(qscale);
  };
  const int samples =
      config.estimator_samples > 0 ? config.estimator_samples : 3 * log_n + 8;

  auto all_covered = [&]() {
    return std::all_of(covered.begin(), covered.end(),
                       [](char c) { return c != 0; });
  };

  while (!all_covered() && result.phases < max_phases) {
    ++result.phases;

    // --- step 1: estimate densities --------------------------------------
    std::vector<bool> uncovered(n);
    for (std::size_t v = 0; v < n; ++v) uncovered[v] = covered[v] == 0;
    const EstimateResult density =
        estimate_two_hop_counts(net, uncovered, rng, config.estimator_samples);
    for (std::size_t v = 0; v < n; ++v)
      rho[v] = round_up_to_power_of_two(density.estimate[v]);

    // --- step 2: candidates = 4-hop maxima of ρ ---------------------------
    std::vector<std::int64_t> best_rho(rho.begin(), rho.end());
    for (int hop = 0; hop < 4; ++hop) {
      net.round([&](NodeView& node) {
        const auto me = static_cast<std::size_t>(node.id());
        for (const Incoming& in : node.inbox())
          if (in.msg.kind == kRho)
            best_rho[me] = std::max(best_rho[me], in.msg.at(0));
        node.broadcast(Message{kRho, {best_rho[me]}});
      });
    }
    net.round([&](NodeView& node) {  // absorb the last hop
      const auto me = static_cast<std::size_t>(node.id());
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kRho)
          best_rho[me] = std::max(best_rho[me], in.msg.at(0));
    });
    std::vector<bool> is_candidate(n, false);
    for (std::size_t v = 0; v < n; ++v)
      is_candidate[v] = rho[v] >= 1 && rho[v] >= best_rho[v];

    // --- step 3: voting ----------------------------------------------------
    std::vector<std::int64_t> draw(n, -1);
    // Draws hoisted out of the round: the serial engine consumed them in
    // ascending node order inside the step, so pre-drawing here preserves
    // the exact byte stream while keeping the shared Rng off the round
    // workers (candidacy is fixed before the round, so the draw set is
    // identical).
    for (std::size_t v = 0; v < n; ++v)
      if (is_candidate[v])
        draw[v] = static_cast<std::int64_t>(rng.next_below(r_range));
    // Candidate neighbors as (id, adjacency slot) so the per-sample vote
    // forwarding below sends in O(1) per candidate.
    std::vector<std::vector<std::pair<NodeId, std::uint32_t>>>
        candidate_neighbors(n);
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      candidate_neighbors[me].clear();
      if (is_candidate[me]) node.broadcast(Message{kCandDraw, {draw[me]}});
    });
    // best (r, id) seen within 1 hop, then spread one more hop.
    std::vector<std::pair<std::int64_t, NodeId>> best1(
        n, {std::numeric_limits<std::int64_t>::max(), -1});
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      auto& best = best1[me];
      if (is_candidate[me]) best = {draw[me], node.id()};
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kCandDraw) {
          candidate_neighbors[me].emplace_back(in.from, in.reply_slot);
          best = std::min(best, {in.msg.at(0), in.from});
        }
      if (best.second != -1)
        node.broadcast(Message{kMinCand, {best.first, best.second}});
    });
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      auto best = best1[me];
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kMinCand)
          best = std::min(best, {in.msg.at(0),
                                 static_cast<NodeId>(in.msg.at(1))});
      vote_of[me] = covered[me] != 0 ? -1 : best.second;
    });

    // --- step 4: estimate votes per candidate (3-round cadence) -----------
    std::vector<double> vote_sum(n, 0.0);
    std::vector<int> vote_samples_seen(n, 0);
    std::vector<std::int64_t> voter_draw(n, qinf);
    std::vector<std::map<NodeId, std::int64_t>> forward_min(n);
    for (int j = 0; j < samples; ++j) {
      // r1: voters broadcast (candidate, draw).  Same hoist as step 3:
      // the voter set is fixed before the round, so drawing serially in
      // node order reproduces the serial engine's Rng stream exactly.
      for (std::size_t v = 0; v < n; ++v)
        voter_draw[v] =
            vote_of[v] == -1 ? qinf : qencode(rng.next_exponential());
      net.round([&](NodeView& node) {
        const auto me = static_cast<std::size_t>(node.id());
        if (vote_of[me] == -1) return;
        node.broadcast(Message{kVoteW, {vote_of[me], voter_draw[me]}});
      });
      // r2: forwarders compute per-candidate minima; candidates absorb
      // direct votes.
      net.round([&](NodeView& node) {
        const auto me = static_cast<std::size_t>(node.id());
        auto& mins = forward_min[me];
        mins.clear();
        std::int64_t direct = qinf;
        if (vote_of[me] == static_cast<NodeId>(node.id()) &&
            vote_of[me] != -1)
          direct = std::min(direct, voter_draw[me]);
        for (const Incoming& in : node.inbox()) {
          if (in.msg.kind != kVoteW) continue;
          const auto cand = static_cast<NodeId>(in.msg.at(0));
          const std::int64_t q = in.msg.at(1);
          if (cand == node.id()) {
            direct = std::min(direct, q);
            continue;
          }
          auto [it, inserted] = mins.try_emplace(cand, q);
          if (!inserted) it->second = std::min(it->second, q);
        }
        // Stash the direct minimum under our own id for round 3.
        if (is_candidate[me]) mins[node.id()] = direct;
        for (const auto& [cand, slot] : candidate_neighbors[me]) {
          auto it = mins.find(cand);
          if (it != mins.end())
            node.send_slot(slot, Message{kVoteMin, {it->second}});
        }
      });
      // r3: candidates fold direct + forwarded minima into the estimate.
      net.round([&](NodeView& node) {
        const auto me = static_cast<std::size_t>(node.id());
        if (!is_candidate[me]) return;
        std::int64_t best = forward_min[me].count(node.id())
                                ? forward_min[me][node.id()]
                                : qinf;
        for (const Incoming& in : node.inbox())
          if (in.msg.kind == kVoteMin) best = std::min(best, in.msg.at(0));
        if (best < qinf) {
          vote_sum[me] += qdecode(best);
          ++vote_samples_seen[me];
        }
      });
    }

    // --- step 5: join and flood coverage ----------------------------------
    // Joins land in a per-node flag and fold into the (shared) result
    // bitset between rounds: VertexSet::insert packs many nodes per word,
    // so it cannot be written from concurrent steps.
    std::vector<char> joined(n, 0);
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      if (!is_candidate[me]) return;
      const double votes = vote_sum[me] > 0
                               ? static_cast<double>(samples) / vote_sum[me]
                               : 0.0;
      if (votes + 1e-12 >= density.estimate[me] / 8.0 && votes > 0) {
        joined[me] = 1;
        covered[me] = 1;
        node.broadcast(Message{kJoined, {}});
      }
    });
    for (std::size_t v = 0; v < n; ++v)
      if (joined[v] != 0) result.dominating_set.insert(static_cast<VertexId>(v));
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      bool near = result.dominating_set.contains(node.id());
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kJoined) near = true;
      if (near) {
        covered[me] = 1;
        node.broadcast(Message{kCovered1, {}});
      }
    });
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kCovered1) covered[me] = 1;
    });
  }

  if (!all_covered()) {
    // Deterministic safety net: uncovered vertices dominate themselves.
    result.used_fallback = true;
    for (std::size_t v = 0; v < n; ++v)
      if (covered[v] == 0) {
        result.dominating_set.insert(static_cast<VertexId>(v));
        covered[v] = 1;
      }
  }

  result.stats = net.stats();
  return result;
}

}  // namespace pg::core
