// Theorem 28: a randomized CONGEST algorithm computing an O(log Δ)-approx
// minimum dominating set of G^2 in poly log n rounds, by simulating the
// [CD18] MDS algorithm on G^2 with only constant-factor slowdown.
//
// Each phase (Section 6.1):
//  1. every vertex estimates its density C_v = |uncovered ∩ N^2[v]| with the
//     Lemma 29 estimator and rounds it up to a power of two (ρ_v);
//  2. vertices whose ρ is maximal in their 4-hop neighborhood (= 2 hops in
//     G^2) become candidates;
//  3. candidates draw r_v ∈ [n^4]; every uncovered vertex votes for the
//     (r, id)-minimal candidate within 2 hops;
//  4. vote counts are estimated per candidate (the candidates partition the
//     voters, so the estimator runs for all candidates in parallel, with
//     per-candidate minima forwarded point-to-point);
//  5. a candidate with ≥ C̃_v/8 estimated votes joins the dominating set;
//     coverage floods 2 hops.
// A deterministic safety net caps the number of phases and lets any still
// uncovered vertex join the set itself (keeps the output always valid).
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/cover.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace pg::core {

struct MdsCongestConfig {
  int estimator_samples = 0;  // <=0: default 3⌈log2 n⌉+8
  int max_phases = 0;         // <=0: default 40·(⌈log2 n⌉+1)
};

struct MdsCongestResult {
  graph::VertexSet dominating_set;
  congest::RoundStats stats;
  int phases = 0;
  bool used_fallback = false;  // some vertices self-joined at the cap
};

MdsCongestResult solve_g2_mds_congest(graph::GraphView g, Rng& rng,
                                      const MdsCongestConfig& config = {});

/// Caller-owned-simulator overload: rewinds `net` via Network::reset() and
/// runs on its topology, so batch drivers reuse one simulator per worker.
MdsCongestResult solve_g2_mds_congest(congest::Network& net, Rng& rng,
                                      const MdsCongestConfig& config = {});

}  // namespace pg::core
