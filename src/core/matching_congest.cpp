#include "core/matching_congest.hpp"

#include <algorithm>
#include <map>

namespace pg::core {

using congest::Incoming;
using congest::Message;
using congest::Network;
using congest::NodeId;
using congest::NodeView;
using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexSet;

namespace {
constexpr std::uint8_t kPropose = 51;
constexpr std::uint8_t kMatched = 52;
}  // namespace

MatchingCongestResult solve_maximal_matching_congest(GraphView g) {
  Network net(g);
  return solve_maximal_matching_congest(net);
}

MatchingCongestResult solve_maximal_matching_congest(Network& net) {
  net.reset();
  GraphView g = net.topology();
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  MatchingCongestResult result;
  result.cover = VertexSet(g.num_vertices());

  // Byte flags, not vector<bool>: nodes flip their own entry from inside
  // the (possibly parallel) rounds, and vector<bool> packs 64 nodes per
  // shared word.
  std::vector<char> matched(n, 0);
  std::vector<NodeId> partner(n, -1);
  std::vector<std::map<NodeId, bool>> nbr_matched(n);
  std::vector<NodeId> proposed_to(n, -1);
  std::vector<std::size_t> proposed_slot(n, 0);

  // Termination: once no unmatched vertex has an unmatched neighbor, no
  // proposals are sent and the loop exits (checked globally, as usual).
  bool any_proposal = true;
  while (any_proposal) {
    // Round A: absorb match announcements, then propose to the smallest
    // unmatched neighbor.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kMatched) nbr_matched[me][in.from] = true;
      proposed_to[me] = -1;
      if (matched[me] != 0) return;
      const auto nbrs = node.neighbors();  // ids are sorted ascending
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (!nbr_matched[me].count(nbrs[i])) {
          proposed_to[me] = nbrs[i];
          proposed_slot[me] = i;
          break;
        }
      }
      if (proposed_to[me] != -1)
        node.send_slot(proposed_slot[me], Message{kPropose, {}});
    });
    // Derived after the barrier instead of set from inside the step: many
    // nodes writing one shared bool is a data race even when every write
    // stores the same value.
    any_proposal = std::any_of(proposed_to.begin(), proposed_to.end(),
                               [](NodeId p) { return p != -1; });
    if (!any_proposal) break;

    // Round B: mutual proposals match; newly matched announce it.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      if (matched[me] != 0) return;
      bool mutual = false;
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kPropose && in.from == proposed_to[me])
          mutual = true;
      if (mutual) {
        matched[me] = 1;
        partner[me] = proposed_to[me];
        node.broadcast(Message{kMatched, {}});
      }
    });
    ++result.proposal_rounds;
  }

  // Under an active fault model these invariants are the *expected*
  // casualties (a forged kPropose makes a one-sided match; a dropped
  // kMatched breaks maximality), so instead of tripping, the result is
  // repaired where possible and returned for the sweep's independent
  // feasibility/--certify re-check to judge.
  const bool adversarial = net.faults_active();
  for (std::size_t v = 0; v < n; ++v) {
    if (matched[v] == 0) continue;
    const bool consistent =
        partner[v] >= 0 && static_cast<std::size_t>(partner[v]) < n &&
        partner[static_cast<std::size_t>(partner[v])] ==
            static_cast<NodeId>(v);
    if (adversarial) {
      if (!consistent) continue;  // one-sided match: leave v out of the cover
    } else {
      PG_CHECK(consistent, "matching partners disagree");
    }
    result.cover.insert(static_cast<VertexId>(v));
    if (static_cast<NodeId>(v) < partner[v])
      result.matching.emplace_back(static_cast<VertexId>(v), partner[v]);
  }
  result.stats = net.stats();

  if (!adversarial)
    PG_CHECK(graph::is_vertex_cover(g, result.cover),
             "matching endpoints failed to cover G");
  return result;
}

}  // namespace pg::core
