// Theorem 7: a deterministic CONGEST (1+ε)-approximation for minimum
// *weighted* vertex cover on G^2 in O(n log n / ε) rounds.
//
// Differences from Algorithm 1 (Section 3.2):
//  (i)  the center condition counts weight, not cardinality: a center may
//       take a class N_i(c)∩R when its maximum weight w*_i is at most
//       W_i·ε/(1+ε) (with ε = 1/l this is the integer test
//       (l+1)·w*_i <= W_i);
//  (ii) classes N_i(c) bucket N(c) by weight scale: w_min(c)·2^i <= w(v) <
//       w_min(c)·2^{i+1}, so that within a class OPT must pay at least
//       W_i − w*_i >= W_i/(1+ε).
// Zero-weight vertices join the cover for free up front (as the paper
// assumes w.l.o.g.).  Weights must fit in O(log n) bits; we require
// w(v) <= n^4.
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace pg::core {

struct MwvcCongestConfig {
  double epsilon = 0.5;
  bool leader_exact = true;  // exact weighted VC at the leader (else 2-approx)
  std::int64_t exact_node_budget = 50'000'000;
};

struct MwvcCongestResult {
  graph::VertexSet cover;
  congest::RoundStats stats;
  std::int64_t phase1_rounds = 0;
  std::int64_t phase2_rounds = 0;
  int iterations = 0;
  graph::Weight phase1_cover_weight = 0;
  std::size_t f_edge_count = 0;
  int epsilon_inverse = 0;
  bool leader_solution_optimal = true;
};

MwvcCongestResult solve_g2_mwvc_congest(graph::GraphView g,
                                        const graph::VertexWeights& w,
                                        const MwvcCongestConfig& config = {});

/// Caller-owned-simulator overload: rewinds `net` via Network::reset() and
/// runs on its topology, so batch drivers reuse one simulator per worker.
MwvcCongestResult solve_g2_mwvc_congest(congest::Network& net,
                                        const graph::VertexWeights& w,
                                        const MwvcCongestConfig& config = {});

}  // namespace pg::core
