#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pg::core {

using congest::Incoming;
using congest::Message;
using congest::Network;
using congest::NodeView;

namespace {

constexpr std::uint8_t kSample = 31;   // field 0: quantized own draw
constexpr std::uint8_t kOneHop = 32;   // field 0: quantized 1-hop min

/// Fixed-point scale: values live in [0, 16) (an Exp(1) draw exceeds 16
/// with probability e^-16), with 2^-(bits-4) resolution.
struct Quantizer {
  int bits;            // total payload bits for a sample
  std::int64_t scale;  // fixed-point multiplier
  std::int64_t infinity;

  explicit Quantizer(int bandwidth) {
    bits = std::clamp(bandwidth - 9, 6, 32);
    scale = std::int64_t{1} << (bits - 4);
    infinity = (std::int64_t{1} << bits) - 1;
  }

  std::int64_t encode(double w) const {
    const double scaled = w * static_cast<double>(scale);
    if (scaled >= static_cast<double>(infinity))
      return infinity;
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(scaled));
  }
  double decode(std::int64_t q) const {
    return static_cast<double>(q) / static_cast<double>(scale);
  }
};

}  // namespace

EstimateResult estimate_two_hop_counts(Network& net,
                                       const std::vector<bool>& membership,
                                       Rng& rng, int samples) {
  const std::size_t n = net.n();
  PG_REQUIRE(membership.size() == n, "membership size mismatch");
  PG_REQUIRE(n >= 2, "estimation needs at least two nodes");

  if (samples <= 0)
    samples =
        3 * static_cast<int>(std::ceil(std::log2(static_cast<double>(n)))) + 8;

  const Quantizer quant(net.bandwidth());
  const std::int64_t start_rounds = net.stats().rounds;

  std::vector<double> sum_of_mins(n, 0.0);
  // Byte flags, not vector<bool>: written per-node from inside (possibly
  // parallel) rounds, and vector<bool> packs 64 nodes per word.
  std::vector<char> saw_member(n, 0);
  // Quantized draws fit 32 bits (Quantizer clamps bits to 32, so every
  // value — infinity included — is < 2^32); storing them narrow halves
  // the estimator's per-node footprint.  Messages still carry int64.
  std::vector<std::uint32_t> one_hop_min(n, 0);
  std::vector<std::uint32_t> my_draw(
      n, static_cast<std::uint32_t>(quant.infinity));

  for (int j = 0; j < samples; ++j) {
    // Round 1: members broadcast a fresh exponential draw.  The draws are
    // hoisted out of the round: the serial engine consumed them in
    // ascending node order inside the step and membership is fixed, so
    // pre-drawing preserves the exact Rng byte stream while keeping the
    // shared generator off the round workers.
    for (std::size_t v = 0; v < n; ++v)
      my_draw[v] = static_cast<std::uint32_t>(
          membership[v] ? quant.encode(rng.next_exponential())
                        : quant.infinity);
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      if (!membership[me]) return;
      node.broadcast(Message{kSample, {my_draw[me]}});
    });
    // Round 2: everyone broadcasts the 1-hop minimum (including itself).
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      std::int64_t best = my_draw[me];
      // Field-count guard + value clamp: adversarial corruption can forge
      // the kind byte of a field-less message or flip payload bits; both
      // the guard and the clamp are identities on fault-free traffic
      // (legal samples are in [1, infinity]).
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kSample && in.msg.num_fields >= 1)
          best = std::min(best, std::clamp(in.msg.at(0), std::int64_t{0},
                                           quant.infinity));
      one_hop_min[me] = static_cast<std::uint32_t>(best);
      node.broadcast(Message{kOneHop, {best}});
    });
    // Round 3 (folded into the next sample's round 1 bookkeeping would
    // conflict on tags; one extra round per sample keeps the protocol
    // simple and still O(log n) total): fold 2-hop minima.
    net.round([&](NodeView& node) {
      const auto me = static_cast<std::size_t>(node.id());
      std::int64_t best = one_hop_min[me];
      for (const Incoming& in : node.inbox())
        if (in.msg.kind == kOneHop && in.msg.num_fields >= 1)
          best = std::min(best, std::clamp(in.msg.at(0), std::int64_t{0},
                                           quant.infinity));
      if (best < quant.infinity) {
        saw_member[me] = 1;
        sum_of_mins[me] += quant.decode(best);
      }
    });
  }

  EstimateResult result;
  result.samples = samples;
  result.estimate.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v)
    if (saw_member[v] != 0 && sum_of_mins[v] > 0)
      result.estimate[v] = static_cast<double>(samples) / sum_of_mins[v];
  result.rounds_used = net.stats().rounds - start_rounds;
  return result;
}

}  // namespace pg::core
