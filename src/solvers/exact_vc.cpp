#include "solvers/exact_vc.hpp"

#include <algorithm>

#include "graph/matching.hpp"
#include "solvers/greedy.hpp"
#include "util/bitset.hpp"
#include "util/cancel.hpp"

namespace pg::solvers {

using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexSet;
using graph::VertexWeights;
using graph::Weight;

namespace {

/// Branch and bound for (weighted) minimum vertex cover over adjacency
/// bitsets.  Branching: a maximum-residual-degree vertex v is either in the
/// cover, or excluded (forcing its whole residual neighborhood in).
/// Reductions: isolated vertices are dropped; a degree-1 vertex u whose
/// neighbor v is no heavier than u forces v in.  Lower bound: greedy
/// vertex-disjoint edges, each costing min of its endpoint weights.
class VcSolver {
 public:
  VcSolver(GraphView g, const VertexWeights* w, std::int64_t budget,
           std::optional<Weight> decision_target)
      : g_(g), budget_(budget), target_(decision_target) {
    const auto n = static_cast<std::size_t>(g.num_vertices());
    weight_.resize(n, 1);
    if (w != nullptr)
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        PG_REQUIRE((*w)[v] >= 0, "vertex weights must be non-negative");
        weight_[static_cast<std::size_t>(v)] = (*w)[v];
      }
    adj_.assign(n, Bitset(n));
    g.for_each_edge([&](VertexId u, VertexId v) {
      adj_[static_cast<std::size_t>(u)].set(static_cast<std::size_t>(v));
      adj_[static_cast<std::size_t>(v)].set(static_cast<std::size_t>(u));
    });

    // Seed the incumbent with the local-ratio 2-approximation.
    VertexWeights seed_w(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      seed_w.set(v, weight_[static_cast<std::size_t>(v)]);
    const VertexSet seed = local_ratio_mwvc(g, seed_w);
    best_cover_.assign(n, false);
    best_cost_ = 0;
    for (VertexId v : seed.to_vector()) {
      best_cover_[static_cast<std::size_t>(v)] = true;
      best_cost_ += weight_[static_cast<std::size_t>(v)];
    }
  }

  ExactResult run() {
    const auto n = static_cast<std::size_t>(g_.num_vertices());
    Bitset alive(n);
    for (std::size_t v = 0; v < n; ++v) alive.set(v);
    Bitset cover(n);
    recurse(std::move(alive), std::move(cover), 0);

    ExactResult result;
    result.optimal = !aborted_;
    result.nodes_explored = nodes_;
    result.value = best_cost_;
    result.solution = VertexSet(g_.num_vertices());
    for (std::size_t v = 0; v < n; ++v)
      if (best_cover_[v]) result.solution.insert(static_cast<VertexId>(v));
    return result;
  }

 private:
  std::size_t residual_degree(const Bitset& alive, std::size_t v) const {
    return adj_[v].intersection_count(alive);
  }

  Weight matching_lower_bound(const Bitset& alive) const {
    Bitset unused = alive;
    Weight bound = 0;
    alive.for_each([&](std::size_t u) {
      if (!unused.test(u)) return;
      Bitset candidates = adj_[u];
      candidates &= unused;
      const std::size_t v = candidates.first_set();
      if (v >= candidates.size()) return;
      unused.reset(u);
      unused.reset(v);
      bound += std::min(weight_[u], weight_[v]);
    });
    return bound;
  }

  /// True when search should stop entirely (budget or decision settled).
  bool done() const {
    if (aborted_) return true;
    return target_.has_value() && best_cost_ <= *target_;
  }

  /// Pruning bound: in decision mode we never need covers above target+1.
  Weight bound() const {
    return target_.has_value() ? std::min<Weight>(best_cost_, *target_ + 1)
                               : best_cost_;
  }

  void record_solution(const Bitset& cover, Weight cost) {
    if (cost >= bound()) return;
    best_cost_ = cost;
    for (std::size_t v = 0; v < best_cover_.size(); ++v)
      best_cover_[v] = cover.test(v);
  }

  void recurse(Bitset alive, Bitset cover, Weight cost) {
    if (done()) return;
    cancel::poll();  // watchdog point: once per branch-and-bound node
    if (++nodes_ > budget_) {
      aborted_ = true;
      return;
    }

    // Reductions, applied in full passes (each pass handles every vertex
    // whose rule currently fires; chains resolve in O(chain length) passes).
    bool changed = true;
    while (changed) {
      changed = false;
      alive.for_each([&](std::size_t v) {
        if (!alive.test(v)) return;  // removed earlier in this pass
        const std::size_t d = residual_degree(alive, v);
        if (d == 0) {
          alive.reset(v);
          changed = true;
        } else if (d == 1) {
          Bitset nbrs = adj_[v];
          nbrs &= alive;
          const std::size_t u = nbrs.first_set();
          if (weight_[u] <= weight_[v]) {
            cover.set(u);
            cost += weight_[u];
            alive.reset(u);
            alive.reset(v);
            changed = true;
          }
        } else if (d == 2) {
          // Triangle-tip rule: a degree-2 vertex whose two neighbors are
          // adjacent can stay out while both neighbors join — any cover
          // holds two of the triangle, and the two neighbors cover a
          // superset of what any other pair covers.  (Weight-safe when
          // neither neighbor is heavier than the tip.)
          Bitset nbrs = adj_[v];
          nbrs &= alive;
          const std::size_t a = nbrs.first_set();
          nbrs.reset(a);
          const std::size_t b = nbrs.first_set();
          if (adj_[a].test(b) && weight_[a] <= weight_[v] &&
              weight_[b] <= weight_[v]) {
            cover.set(a);
            cover.set(b);
            cost += weight_[a] + weight_[b];
            alive.reset(a);
            alive.reset(b);
            alive.reset(v);
            changed = true;
          }
        }
      });
      if (cost >= bound()) return;
    }

    // Pick the branching vertex: max residual degree, then max weight.
    std::size_t pick = alive.size();
    std::size_t pick_degree = 0;
    alive.for_each([&](std::size_t v) {
      const std::size_t d = residual_degree(alive, v);
      if (d > pick_degree ||
          (d == pick_degree && pick != alive.size() && d > 0 &&
           weight_[v] > weight_[pick])) {
        pick = v;
        pick_degree = d;
      }
    });
    if (pick == alive.size() || pick_degree == 0) {
      // No edges remain: current cover is feasible.
      record_solution(cover, cost);
      return;
    }

    if (cost + matching_lower_bound(alive) >= bound()) return;

    // Branch 2 first when excluding is cheap?  Keep deterministic order:
    // include `pick`, then exclude it (forcing its neighborhood).
    {
      Bitset alive2 = alive;
      Bitset cover2 = cover;
      alive2.reset(pick);
      cover2.set(pick);
      recurse(std::move(alive2), std::move(cover2), cost + weight_[pick]);
    }
    if (done()) return;
    {
      Bitset nbrs = adj_[pick];
      nbrs &= alive;
      Weight extra = 0;
      Bitset alive2 = alive;
      Bitset cover2 = cover;
      nbrs.for_each([&](std::size_t u) {
        cover2.set(u);
        extra += weight_[u];
        alive2.reset(u);
      });
      alive2.reset(pick);
      recurse(std::move(alive2), std::move(cover2), cost + extra);
    }
  }

  const GraphView g_;
  std::vector<Bitset> adj_;
  std::vector<Weight> weight_;
  std::vector<bool> best_cover_;
  Weight best_cost_ = 0;
  std::int64_t budget_;
  std::int64_t nodes_ = 0;
  bool aborted_ = false;
  std::optional<Weight> target_;
};

}  // namespace

ExactResult solve_mvc(GraphView g, std::int64_t node_budget) {
  return VcSolver(g, nullptr, node_budget, std::nullopt).run();
}

ExactResult solve_mwvc(GraphView g, const VertexWeights& w,
                       std::int64_t node_budget) {
  PG_REQUIRE(w.size() == g.num_vertices(), "weights/graph size mismatch");
  return VcSolver(g, &w, node_budget, std::nullopt).run();
}

std::optional<bool> has_vc_of_size_at_most(GraphView g, Weight k,
                                           std::int64_t node_budget) {
  if (k < 0) return false;
  const ExactResult result = VcSolver(g, nullptr, node_budget, k).run();
  if (result.value <= k) return true;   // found a witness (even if aborted)
  if (!result.optimal) return std::nullopt;
  return false;
}

}  // namespace pg::solvers
