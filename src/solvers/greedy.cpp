#include "solvers/greedy.hpp"

#include <algorithm>
#include <queue>

#include "graph/power_view.hpp"

namespace pg::solvers {

using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexSet;
using graph::VertexWeights;
using graph::Weight;

VertexSet local_ratio_mwvc(GraphView g, const VertexWeights& w) {
  PG_REQUIRE(w.size() == g.num_vertices(), "weights/graph size mismatch");
  std::vector<Weight> residual(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    PG_REQUIRE(w[v] >= 0, "vertex weights must be non-negative");
    residual[static_cast<std::size_t>(v)] = w[v];
  }
  g.for_each_edge([&](VertexId u, VertexId v) {
    const Weight delta = std::min(residual[static_cast<std::size_t>(u)],
                                  residual[static_cast<std::size_t>(v)]);
    residual[static_cast<std::size_t>(u)] -= delta;
    residual[static_cast<std::size_t>(v)] -= delta;
  });
  VertexSet cover(g.num_vertices());
  // Zero-residual vertices form the cover; vertices that started at weight 0
  // join for free (harmless and makes the cover maximal-friendly).
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (residual[static_cast<std::size_t>(v)] == 0 && g.degree(v) > 0)
      cover.insert(v);
  return cover;
}

namespace {

VertexSet greedy_ds_impl(GraphView g, const VertexWeights* w) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<bool> dominated(n, false);
  std::size_t num_dominated = 0;
  VertexSet ds(g.num_vertices());

  while (num_dominated < n) {
    VertexId best = -1;
    std::size_t best_gain = 0;
    double best_score = -1.0;
    for (VertexId c = 0; c < g.num_vertices(); ++c) {
      if (ds.contains(c)) continue;
      std::size_t gain = dominated[static_cast<std::size_t>(c)] ? 0 : 1;
      for (VertexId u : g.neighbors(c))
        if (!dominated[static_cast<std::size_t>(u)]) ++gain;
      if (gain == 0) continue;
      const double cost = w != nullptr ? static_cast<double>(std::max<Weight>(
                                             (*w)[c], 1))
                                       : 1.0;
      const double score = static_cast<double>(gain) / cost;
      if (score > best_score) {
        best_score = score;
        best = c;
        best_gain = gain;
      }
    }
    PG_CHECK(best != -1, "greedy DS stalled before full domination");
    ds.insert(best);
    if (!dominated[static_cast<std::size_t>(best)]) {
      dominated[static_cast<std::size_t>(best)] = true;
      ++num_dominated;
    }
    for (VertexId u : g.neighbors(best))
      if (!dominated[static_cast<std::size_t>(u)]) {
        dominated[static_cast<std::size_t>(u)] = true;
        ++num_dominated;
      }
    (void)best_gain;
  }
  return ds;
}

}  // namespace

VertexSet greedy_mds(GraphView g) { return greedy_ds_impl(g, nullptr); }

VertexSet greedy_mwds(GraphView g, const VertexWeights& w) {
  PG_REQUIRE(w.size() == g.num_vertices(), "weights/graph size mismatch");
  return greedy_ds_impl(g, &w);
}

VertexSet local_ratio_mvc_power(GraphView g, int r) {
  // Unit-weight local ratio over for_each_edge order degenerates to the
  // lexicographic greedy matching: scanning rows u ascending, an unmatched
  // u pairs with its smallest unmatched G^r-neighbor v > u (a row's edges
  // after the pairing see a zero residual and do nothing, and edges to
  // smaller ids were already decided in earlier rows).  Simulating that
  // needs one ball scan per still-unmatched row, never G^r itself.
  const VertexId n = g.num_vertices();
  graph::PowerView view(g, r);
  std::vector<char> matched(static_cast<std::size_t>(n), 0);
  VertexSet cover(n);
  for (VertexId u = 0; u < n; ++u) {
    if (matched[static_cast<std::size_t>(u)]) continue;
    VertexId best = -1;
    view.for_each_neighbor(u, [&](VertexId v) {
      if (v > u && !matched[static_cast<std::size_t>(v)] &&
          (best == -1 || v < best))
        best = v;
    });
    if (best == -1) continue;
    matched[static_cast<std::size_t>(u)] = 1;
    matched[static_cast<std::size_t>(best)] = 1;
    cover.insert(u);
    cover.insert(best);
  }
  return cover;
}

namespace {

/// Shared core of the implicit weighted local ratio: the Bar-Yehuda–Even
/// residual transfer over the edges of G^r — restricted to
/// {v : active[v]} when `active` is non-null — in for_each_edge order.
/// The materialized loop walks rows u ascending and each row's sorted
/// neighbors v > u.  An edge only moves residuals when both endpoints
/// still hold weight, so rows with residual 0 are pure no-ops (every
/// delta is 0) and a live row is done the moment its own residual
/// empties — the skips below change nothing observable.  The single
/// definition is load-bearing: local_ratio_mwvc_power's equivalence
/// proofs and solve_gr_mwvc's remainder scoring must stay in lockstep.
std::vector<Weight> power_residual_transfer(GraphView g, int r,
                                            const VertexWeights& w,
                                            const std::vector<bool>* active) {
  const VertexId n = g.num_vertices();
  std::vector<Weight> residual(static_cast<std::size_t>(n), 0);
  for (VertexId v = 0; v < n; ++v) {
    PG_REQUIRE(w[v] >= 0, "vertex weights must be non-negative");
    if (active == nullptr || (*active)[static_cast<std::size_t>(v)])
      residual[static_cast<std::size_t>(v)] = w[v];
  }
  graph::PowerView view(g, r);
  for (VertexId u = 0; u < n; ++u) {
    if (active != nullptr && !(*active)[static_cast<std::size_t>(u)])
      continue;
    auto& ru = residual[static_cast<std::size_t>(u)];
    if (ru == 0) continue;
    for (VertexId v : view.neighbors(u)) {  // sorted, matches the CSR row
      if (v <= u) continue;
      if (active != nullptr && !(*active)[static_cast<std::size_t>(v)])
        continue;
      auto& rv = residual[static_cast<std::size_t>(v)];
      const Weight delta = std::min(ru, rv);
      ru -= delta;
      rv -= delta;
      if (ru == 0) break;
    }
  }
  return residual;
}

}  // namespace

VertexSet local_ratio_mwvc_power(GraphView g, int r,
                                 const VertexWeights& w) {
  PG_REQUIRE(w.size() == g.num_vertices(), "weights/graph size mismatch");
  const VertexId n = g.num_vertices();
  const std::vector<Weight> residual =
      power_residual_transfer(g, r, w, nullptr);
  VertexSet cover(n);
  // deg_{G^r}(v) > 0 iff deg_G(v) > 0 for every r >= 1, so the
  // "non-isolated" membership test needs no ball query.
  for (VertexId v = 0; v < n; ++v)
    if (residual[static_cast<std::size_t>(v)] == 0 && g.degree(v) > 0)
      cover.insert(v);
  return cover;
}

VertexSet local_ratio_mwvc_power_on(GraphView g, int r,
                                    const VertexWeights& w,
                                    const std::vector<bool>& active) {
  PG_REQUIRE(w.size() == g.num_vertices(), "weights/graph size mismatch");
  const VertexId n = g.num_vertices();
  PG_REQUIRE(active.size() == static_cast<std::size_t>(n),
             "active mask/graph size mismatch");
  for (VertexId v = 0; v < n; ++v)
    PG_REQUIRE(!active[static_cast<std::size_t>(v)] || w[v] > 0,
               "restricted local ratio needs positive active weights");
  const std::vector<Weight> residual =
      power_residual_transfer(g, r, w, &active);
  VertexSet cover(n);
  // Active weights are strictly positive, so a zero residual proves the
  // vertex lost weight to an incident induced edge — exactly the
  // materialized membership rule without an induced-degree probe.
  for (VertexId v = 0; v < n; ++v)
    if (active[static_cast<std::size_t>(v)] &&
        residual[static_cast<std::size_t>(v)] == 0)
      cover.insert(v);
  return cover;
}

VertexSet greedy_mds_power(GraphView g, int r) {
  // Lazy greedy: stored heap gains are upper bounds (gains only decrease),
  // so a popped entry is re-evaluated with one ball BFS and selected only
  // when its fresh gain still beats — or ties at a lower id than — the
  // next stored entry.  Ties resolve to the lowest id, matching
  // greedy_ds_impl's strict `score > best` scan exactly.
  const VertexId n = g.num_vertices();
  const auto un = static_cast<std::size_t>(n);
  graph::PowerView view(g, r);
  std::vector<char> dominated(un, 0);
  std::size_t num_dominated = 0;
  VertexSet ds(n);

  struct Entry {
    std::size_t gain;
    VertexId id;
    bool operator<(const Entry& o) const {  // max-heap: gain desc, id asc
      if (gain != o.gain) return gain < o.gain;
      return id > o.id;
    }
  };
  std::priority_queue<Entry> heap;
  auto fresh_gain = [&](VertexId c) {
    std::size_t gain = dominated[static_cast<std::size_t>(c)] ? 0 : 1;
    view.for_each_neighbor(c, [&](VertexId u) {
      if (!dominated[static_cast<std::size_t>(u)]) ++gain;
    });
    return gain;
  };
  for (VertexId c = 0; c < n; ++c)
    heap.push({1 + view.degree(c), c});

  while (num_dominated < un) {
    PG_CHECK(!heap.empty(), "greedy DS stalled before full domination");
    const Entry top = heap.top();
    heap.pop();
    if (ds.contains(top.id)) continue;  // stale duplicate of a selection
    const std::size_t gain = fresh_gain(top.id);
    if (gain == 0) continue;  // fully dominated ball; can never fire again
    if (!heap.empty()) {
      const Entry& next = heap.top();
      if (gain < next.gain || (gain == next.gain && top.id > next.id)) {
        heap.push({gain, top.id});
        continue;
      }
    }
    ds.insert(top.id);
    if (!dominated[static_cast<std::size_t>(top.id)]) {
      dominated[static_cast<std::size_t>(top.id)] = 1;
      ++num_dominated;
    }
    view.for_each_neighbor(top.id, [&](VertexId u) {
      if (!dominated[static_cast<std::size_t>(u)]) {
        dominated[static_cast<std::size_t>(u)] = 1;
        ++num_dominated;
      }
    });
  }
  return ds;
}

VertexSet greedy_mwds_power(GraphView g, int r, const VertexWeights& w) {
  PG_REQUIRE(w.size() == g.num_vertices(), "weights/graph size mismatch");
  // The weighted twin of greedy_mds_power: scores are gain/cost with the
  // cost fixed per candidate, so stored scores are still upper bounds
  // (gains only decrease) and the same lazy re-evaluation applies.  Both
  // sides of every comparison compute gain/cost with identical IEEE
  // operations, so ties resolve exactly like greedy_ds_impl's strict
  // `score > best` ascending scan: lowest id among the maximal scores.
  const VertexId n = g.num_vertices();
  const auto un = static_cast<std::size_t>(n);
  graph::PowerView view(g, r);
  std::vector<char> dominated(un, 0);
  std::size_t num_dominated = 0;
  VertexSet ds(n);

  auto cost_of = [&](VertexId c) {
    return static_cast<double>(std::max<Weight>(w[c], 1));
  };

  struct Entry {
    double score;
    VertexId id;
    bool operator<(const Entry& o) const {  // max-heap: score desc, id asc
      if (score != o.score) return score < o.score;
      return id > o.id;
    }
  };
  std::priority_queue<Entry> heap;
  auto fresh_gain = [&](VertexId c) {
    std::size_t gain = dominated[static_cast<std::size_t>(c)] ? 0 : 1;
    view.for_each_neighbor(c, [&](VertexId u) {
      if (!dominated[static_cast<std::size_t>(u)]) ++gain;
    });
    return gain;
  };
  for (VertexId c = 0; c < n; ++c)
    heap.push({static_cast<double>(1 + view.degree(c)) / cost_of(c), c});

  while (num_dominated < un) {
    PG_CHECK(!heap.empty(), "greedy DS stalled before full domination");
    const Entry top = heap.top();
    heap.pop();
    if (ds.contains(top.id)) continue;  // stale duplicate of a selection
    const std::size_t gain = fresh_gain(top.id);
    if (gain == 0) continue;  // fully dominated ball; can never fire again
    const double score = static_cast<double>(gain) / cost_of(top.id);
    if (!heap.empty()) {
      const Entry& next = heap.top();
      if (score < next.score || (score == next.score && top.id > next.id)) {
        heap.push({score, top.id});
        continue;
      }
    }
    ds.insert(top.id);
    if (!dominated[static_cast<std::size_t>(top.id)]) {
      dominated[static_cast<std::size_t>(top.id)] = 1;
      ++num_dominated;
    }
    view.for_each_neighbor(top.id, [&](VertexId u) {
      if (!dominated[static_cast<std::size_t>(u)]) {
        dominated[static_cast<std::size_t>(u)] = 1;
        ++num_dominated;
      }
    });
  }
  return ds;
}

}  // namespace pg::solvers
