#include "solvers/greedy.hpp"

#include <algorithm>

namespace pg::solvers {

using graph::Graph;
using graph::VertexId;
using graph::VertexSet;
using graph::VertexWeights;
using graph::Weight;

VertexSet local_ratio_mwvc(const Graph& g, const VertexWeights& w) {
  PG_REQUIRE(w.size() == g.num_vertices(), "weights/graph size mismatch");
  std::vector<Weight> residual(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    PG_REQUIRE(w[v] >= 0, "vertex weights must be non-negative");
    residual[static_cast<std::size_t>(v)] = w[v];
  }
  g.for_each_edge([&](VertexId u, VertexId v) {
    const Weight delta = std::min(residual[static_cast<std::size_t>(u)],
                                  residual[static_cast<std::size_t>(v)]);
    residual[static_cast<std::size_t>(u)] -= delta;
    residual[static_cast<std::size_t>(v)] -= delta;
  });
  VertexSet cover(g.num_vertices());
  // Zero-residual vertices form the cover; vertices that started at weight 0
  // join for free (harmless and makes the cover maximal-friendly).
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (residual[static_cast<std::size_t>(v)] == 0 && g.degree(v) > 0)
      cover.insert(v);
  return cover;
}

namespace {

VertexSet greedy_ds_impl(const Graph& g, const VertexWeights* w) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<bool> dominated(n, false);
  std::size_t num_dominated = 0;
  VertexSet ds(g.num_vertices());

  while (num_dominated < n) {
    VertexId best = -1;
    std::size_t best_gain = 0;
    double best_score = -1.0;
    for (VertexId c = 0; c < g.num_vertices(); ++c) {
      if (ds.contains(c)) continue;
      std::size_t gain = dominated[static_cast<std::size_t>(c)] ? 0 : 1;
      for (VertexId u : g.neighbors(c))
        if (!dominated[static_cast<std::size_t>(u)]) ++gain;
      if (gain == 0) continue;
      const double cost = w != nullptr ? static_cast<double>(std::max<Weight>(
                                             (*w)[c], 1))
                                       : 1.0;
      const double score = static_cast<double>(gain) / cost;
      if (score > best_score) {
        best_score = score;
        best = c;
        best_gain = gain;
      }
    }
    PG_CHECK(best != -1, "greedy DS stalled before full domination");
    ds.insert(best);
    if (!dominated[static_cast<std::size_t>(best)]) {
      dominated[static_cast<std::size_t>(best)] = true;
      ++num_dominated;
    }
    for (VertexId u : g.neighbors(best))
      if (!dominated[static_cast<std::size_t>(u)]) {
        dominated[static_cast<std::size_t>(u)] = true;
        ++num_dominated;
      }
    (void)best_gain;
  }
  return ds;
}

}  // namespace

VertexSet greedy_mds(const Graph& g) { return greedy_ds_impl(g, nullptr); }

VertexSet greedy_mwds(const Graph& g, const VertexWeights& w) {
  PG_REQUIRE(w.size() == g.num_vertices(), "weights/graph size mismatch");
  return greedy_ds_impl(g, &w);
}

}  // namespace pg::solvers
