#include "solvers/fpt_vc.hpp"

#include <algorithm>
#include <vector>

namespace pg::solvers {

using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexSet;
using graph::Weight;

namespace {

struct SearchState {
  std::vector<std::vector<VertexId>> adj;  // mutable residual adjacency
  std::vector<bool> alive;
  std::vector<bool> in_cover;

  explicit SearchState(GraphView g)
      : adj(static_cast<std::size_t>(g.num_vertices())),
        alive(static_cast<std::size_t>(g.num_vertices()), true),
        in_cover(static_cast<std::size_t>(g.num_vertices()), false) {
    g.for_each_edge([&](VertexId u, VertexId v) {
      adj[static_cast<std::size_t>(u)].push_back(v);
      adj[static_cast<std::size_t>(v)].push_back(u);
    });
  }

  std::size_t residual_degree(VertexId v) const {
    std::size_t d = 0;
    for (VertexId u : adj[static_cast<std::size_t>(v)])
      if (alive[static_cast<std::size_t>(u)]) ++d;
    return d;
  }
};

/// Bounded search tree: pick a max-degree vertex v; either v is in the
/// cover (k-1 budget) or N(v) is (k-|N(v)| budget).  Degree-1 chains are
/// resolved greedily (take the neighbor); if max degree <= 2 the residual
/// graph is a union of paths/cycles and is solved directly.
bool search(SearchState& state, Weight k) {
  // Reduction: handle degree 0 and degree 1.
  bool changed = true;
  std::vector<VertexId> taken_here;
  while (changed) {
    changed = false;
    for (std::size_t v = 0; v < state.alive.size(); ++v) {
      if (!state.alive[v]) continue;
      const std::size_t d = state.residual_degree(static_cast<VertexId>(v));
      if (d == 0) {
        state.alive[v] = false;
        changed = true;
      } else if (d == 1) {
        VertexId u = -1;
        for (VertexId cand : state.adj[v])
          if (state.alive[static_cast<std::size_t>(cand)]) {
            u = cand;
            break;
          }
        if (k == 0) return false;
        state.alive[static_cast<std::size_t>(u)] = false;
        state.alive[v] = false;
        state.in_cover[static_cast<std::size_t>(u)] = true;
        taken_here.push_back(u);
        --k;
        changed = true;
      }
    }
  }

  // Pick max-degree vertex.
  VertexId pick = -1;
  std::size_t pick_degree = 0;
  for (std::size_t v = 0; v < state.alive.size(); ++v) {
    if (!state.alive[v]) continue;
    const std::size_t d = state.residual_degree(static_cast<VertexId>(v));
    if (d > pick_degree) {
      pick_degree = d;
      pick = static_cast<VertexId>(v);
    }
  }
  if (pick == -1) return true;  // no edges left
  if (k <= 0) goto fail;

  // Branch 1: pick in cover.
  {
    SearchState saved = state;
    state.alive[static_cast<std::size_t>(pick)] = false;
    state.in_cover[static_cast<std::size_t>(pick)] = true;
    if (search(state, k - 1)) return true;
    state = std::move(saved);
  }
  // Branch 2: N(pick) in cover.
  {
    std::vector<VertexId> nbrs;
    for (VertexId u : state.adj[static_cast<std::size_t>(pick)])
      if (state.alive[static_cast<std::size_t>(u)]) nbrs.push_back(u);
    if (static_cast<Weight>(nbrs.size()) <= k) {
      SearchState saved = state;
      for (VertexId u : nbrs) {
        state.alive[static_cast<std::size_t>(u)] = false;
        state.in_cover[static_cast<std::size_t>(u)] = true;
      }
      state.alive[static_cast<std::size_t>(pick)] = false;
      if (search(state, k - static_cast<Weight>(nbrs.size()))) return true;
      state = std::move(saved);
    }
  }

fail:
  // Undo reductions done at this level.
  for (VertexId u : taken_here)
    state.in_cover[static_cast<std::size_t>(u)] = false;
  return false;
}

}  // namespace

std::optional<VertexSet> fpt_vertex_cover(GraphView g, Weight k) {
  if (k < 0) return std::nullopt;
  SearchState state(g);
  if (!search(state, k)) return std::nullopt;
  VertexSet cover(g.num_vertices());
  for (std::size_t v = 0; v < state.in_cover.size(); ++v)
    if (state.in_cover[v]) cover.insert(static_cast<VertexId>(v));
  PG_CHECK(graph::is_vertex_cover(g, cover), "FPT search produced a non-cover");
  PG_CHECK(static_cast<Weight>(cover.size()) <= k,
           "FPT search exceeded its budget");
  return cover;
}

}  // namespace pg::solvers
