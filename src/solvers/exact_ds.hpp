// Exact minimum (weighted) dominating set via set-cover branch and bound.
//
// The MDS lower-bound families of the paper (Sections 7.1–7.3) are verified
// with this solver.  Their path/shared/merged gadget chains are resolved by
// classic set-cover preprocessing (candidate dominance and element
// dominance), after which the residual search is shallow.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/cover.hpp"
#include "graph/graph.hpp"
#include "solvers/exact_vc.hpp"  // ExactResult
#include "util/bitset.hpp"

namespace pg::solvers {

/// A weighted set-cover instance: candidate c covers `coverage[c]` and
/// costs `costs[c]`.  Elements and candidates are indexed independently.
struct SetCoverInstance {
  std::size_t num_elements = 0;
  std::vector<Bitset> coverage;        // one bitset (num_elements) per candidate
  std::vector<graph::Weight> costs;    // one non-negative cost per candidate
};

/// Minimizes total cost such that the union of chosen candidates covers all
/// elements.  `solution` holds candidate indices (as a VertexSet over the
/// candidate universe).
ExactResult solve_set_cover(const SetCoverInstance& instance,
                            std::int64_t node_budget = kDefaultNodeBudget,
                            std::optional<graph::Weight> decision_target = {});

/// Minimum dominating set of `g` (candidates = vertices, coverage = closed
/// neighborhoods).
ExactResult solve_mds(graph::GraphView g,
                      std::int64_t node_budget = kDefaultNodeBudget);

/// Minimum weighted dominating set of `g`.
ExactResult solve_mwds(graph::GraphView g, const graph::VertexWeights& w,
                       std::int64_t node_budget = kDefaultNodeBudget);

/// Decision: does `g` have a dominating set of weight <= k?
/// Pass w == nullptr for the unweighted question.  nullopt if the budget
/// ran out before the question was settled.
std::optional<bool> has_ds_of_weight_at_most(
    graph::GraphView g, const graph::VertexWeights* w, graph::Weight k,
    std::int64_t node_budget = kDefaultNodeBudget);

/// Builds the domination set-cover instance of a graph (exposed for tests).
SetCoverInstance domination_instance(graph::GraphView g,
                                     const graph::VertexWeights* w);

}  // namespace pg::solvers
