// Classical approximation baselines the paper compares against (implicitly
// or explicitly): Gavril's matching 2-approximation for MVC, the
// Bar-Yehuda–Even local-ratio 2-approximation for weighted MVC, and the
// greedy (H_k-approximate) dominating-set / set-cover heuristics.
#pragma once

#include <vector>

#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace pg::solvers {

/// Local-ratio 2-approximation for minimum weighted vertex cover [BE83].
graph::VertexSet local_ratio_mwvc(graph::GraphView g,
                                  const graph::VertexWeights& w);

/// Greedy minimum dominating set: repeatedly picks the vertex covering the
/// most uncovered vertices.  (1 + ln(Δ+1))-approximate.
graph::VertexSet greedy_mds(graph::GraphView g);

/// Greedy weighted dominating set (max coverage per unit weight).
graph::VertexSet greedy_mwds(graph::GraphView g,
                             const graph::VertexWeights& w);

// Implicit power-graph baselines: the same covers/sets the materialized
// baselines produce on G^r, computed through graph::PowerView's truncated
// BFS instead of graph::power — this is what lets the sweep runner score
// large-n cells (where G^r would be hundreds of millions of edges)
// against the usual greedy references.  Both are property-tested to equal
// their materialized counterparts vertex-for-vertex.

/// Exactly local_ratio_mwvc(power(g, r), unit weights): the lexicographic
/// greedy matching of G^r, simulated edge-order-faithfully with one
/// truncated BFS per unmatched vertex.  2-approximate MVC of G^r.
graph::VertexSet local_ratio_mvc_power(graph::GraphView g, int r);

/// Exactly greedy_mds(power(g, r)): max-coverage greedy dominating set of
/// G^r via lazy gain re-evaluation over PowerView balls (gains only
/// decrease, so a stale max-heap entry re-checks in one BFS).
/// (1 + ln(Delta_r + 1))-approximate MDS of G^r.
graph::VertexSet greedy_mds_power(graph::GraphView g, int r);

/// Exactly local_ratio_mwvc(power(g, r), w): the Bar-Yehuda–Even local
/// ratio over G^r's edges in for_each_edge order, simulated row by row
/// with one sorted ball per still-positive-residual vertex — rows whose
/// residual is already zero contribute only zero deltas and are skipped,
/// and a row stops early once its own residual empties.  2-approximate
/// weighted MVC of G^r; with unit weights this is vertex-for-vertex
/// local_ratio_mvc_power.
graph::VertexSet local_ratio_mwvc_power(graph::GraphView g, int r,
                                        const graph::VertexWeights& w);

/// local_ratio_mwvc restricted to the subgraph of G^r induced by
/// {v : active[v]}: exactly
/// local_ratio_mwvc(induced_power_subgraph(g, r, actives ascending), w)
/// mapped back to original ids.  Requires strictly positive weights on
/// the active vertices (a zero-weight active would need an
/// induced-degree probe to reproduce the materialized membership rule).
/// `local_ratio_mwvc_power` is the all-active case; core::solve_gr_mwvc
/// scores unmaterializably large remainders through this.
graph::VertexSet local_ratio_mwvc_power_on(graph::GraphView g, int r,
                                           const graph::VertexWeights& w,
                                           const std::vector<bool>& active);

/// Exactly greedy_mwds(power(g, r), w): weighted max-coverage-per-cost
/// greedy dominating set of G^r via the same lazy heap as
/// greedy_mds_power, with scores gain/max(w, 1) (costs are fixed, so
/// stored scores remain upper bounds).  With unit weights this is
/// vertex-for-vertex greedy_mds_power.
graph::VertexSet greedy_mwds_power(graph::GraphView g, int r,
                                   const graph::VertexWeights& w);

}  // namespace pg::solvers
