// Classical approximation baselines the paper compares against (implicitly
// or explicitly): Gavril's matching 2-approximation for MVC, the
// Bar-Yehuda–Even local-ratio 2-approximation for weighted MVC, and the
// greedy (H_k-approximate) dominating-set / set-cover heuristics.
#pragma once

#include <vector>

#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace pg::solvers {

/// Local-ratio 2-approximation for minimum weighted vertex cover [BE83].
graph::VertexSet local_ratio_mwvc(const graph::Graph& g,
                                  const graph::VertexWeights& w);

/// Greedy minimum dominating set: repeatedly picks the vertex covering the
/// most uncovered vertices.  (1 + ln(Δ+1))-approximate.
graph::VertexSet greedy_mds(const graph::Graph& g);

/// Greedy weighted dominating set (max coverage per unit weight).
graph::VertexSet greedy_mwds(const graph::Graph& g,
                             const graph::VertexWeights& w);

}  // namespace pg::solvers
