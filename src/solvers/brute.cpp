#include "solvers/brute.hpp"

#include <bit>
#include <limits>

namespace pg::solvers {

using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexWeights;
using graph::Weight;

namespace {

constexpr int kMaxBruteVertices = 24;

std::vector<std::uint32_t> adjacency_masks(GraphView g) {
  PG_REQUIRE(g.num_vertices() <= kMaxBruteVertices,
             "brute-force solvers are limited to 24 vertices");
  std::vector<std::uint32_t> adj(static_cast<std::size_t>(g.num_vertices()), 0);
  g.for_each_edge([&](VertexId u, VertexId v) {
    adj[static_cast<std::size_t>(u)] |= 1u << v;
    adj[static_cast<std::size_t>(v)] |= 1u << u;
  });
  return adj;
}

Weight subset_weight(std::uint32_t subset, const VertexWeights* w, int n) {
  if (w == nullptr)
    return static_cast<Weight>(std::popcount(subset));
  Weight total = 0;
  for (int v = 0; v < n; ++v)
    if (subset & (1u << v)) total += (*w)[v];
  return total;
}

Weight brute_vc(GraphView g, const VertexWeights* w) {
  const int n = g.num_vertices();
  const auto adj = adjacency_masks(g);
  Weight best = std::numeric_limits<Weight>::max() / 4;
  for (std::uint32_t subset = 0; subset < (1u << n); ++subset) {
    bool is_cover = true;
    for (int v = 0; v < n && is_cover; ++v)
      if (!(subset & (1u << v)) &&
          (adj[static_cast<std::size_t>(v)] & ~subset) != 0)
        is_cover = false;
    if (is_cover) best = std::min(best, subset_weight(subset, w, n));
  }
  return best;
}

Weight brute_ds(GraphView g, const VertexWeights* w) {
  const int n = g.num_vertices();
  const auto adj = adjacency_masks(g);
  std::vector<std::uint32_t> closed(adj);
  for (int v = 0; v < n; ++v) closed[static_cast<std::size_t>(v)] |= 1u << v;
  const std::uint32_t all = n == 32 ? ~0u : (1u << n) - 1;
  Weight best = std::numeric_limits<Weight>::max() / 4;
  for (std::uint32_t subset = 0; subset < (1u << n); ++subset) {
    std::uint32_t dominated = 0;
    for (int v = 0; v < n; ++v)
      if (subset & (1u << v)) dominated |= closed[static_cast<std::size_t>(v)];
    if (dominated == all) best = std::min(best, subset_weight(subset, w, n));
  }
  return best;
}

}  // namespace

Weight brute_force_mvc_size(GraphView g) { return brute_vc(g, nullptr); }

Weight brute_force_mwvc_weight(GraphView g, const VertexWeights& w) {
  PG_REQUIRE(w.size() == g.num_vertices(), "weights/graph size mismatch");
  return brute_vc(g, &w);
}

Weight brute_force_mds_size(GraphView g) { return brute_ds(g, nullptr); }

Weight brute_force_mwds_weight(GraphView g, const VertexWeights& w) {
  PG_REQUIRE(w.size() == g.num_vertices(), "weights/graph size mismatch");
  return brute_ds(g, &w);
}

}  // namespace pg::solvers
