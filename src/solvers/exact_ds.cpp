#include "solvers/exact_ds.hpp"

#include <algorithm>
#include <limits>

#include "util/cancel.hpp"

namespace pg::solvers {

using graph::Graph;
using graph::GraphView;
using graph::VertexId;
using graph::VertexSet;
using graph::VertexWeights;
using graph::Weight;

namespace {

constexpr Weight kInfinity = std::numeric_limits<Weight>::max() / 4;

/// Branch and bound over set-cover states.
///
/// Root preprocessing (all standard, all optimality-preserving):
///  * zero-cost candidates are taken outright;
///  * candidate dominance: drop c when some c' covers a superset at most as
///    expensively (ties broken by index);
///  * element dominance: drop element e' when some e has dominators(e) ⊆
///    dominators(e') — covering e then covers e' automatically.
///
/// Search: branch on an uncovered element with the fewest live dominators,
/// trying each dominator (largest residual coverage first) and excluding
/// the ones already tried from later branches.  Lower bound: greedy packing
/// of uncovered elements with pairwise-disjoint dominator sets, each paying
/// its cheapest live dominator.
class SetCoverSolver {
 public:
  SetCoverSolver(const SetCoverInstance& instance, std::int64_t budget,
                 std::optional<Weight> target)
      : instance_(instance), budget_(budget), target_(target) {
    const std::size_t num_candidates = instance.coverage.size();
    PG_REQUIRE(instance.costs.size() == num_candidates,
               "cost per candidate required");
    for (Weight c : instance.costs)
      PG_REQUIRE(c >= 0, "set-cover costs must be non-negative");
    for (const Bitset& cov : instance.coverage)
      PG_REQUIRE(cov.size() == instance.num_elements,
                 "coverage bitset size mismatch");

    // Dominators per element (transpose of coverage).
    dominators_.assign(instance.num_elements, Bitset(num_candidates));
    for (std::size_t c = 0; c < num_candidates; ++c)
      instance.coverage[c].for_each(
          [&](std::size_t e) { dominators_[e].set(c); });
  }

  ExactResult run() {
    const std::size_t num_candidates = instance_.coverage.size();
    Bitset covered(instance_.num_elements);
    Bitset live(num_candidates);
    for (std::size_t c = 0; c < num_candidates; ++c) live.set(c);
    Bitset chosen(num_candidates);
    Weight cost = 0;

    // --- root preprocessing ---------------------------------------------
    // Zero-cost candidates can never hurt.
    for (std::size_t c = 0; c < num_candidates; ++c)
      if (instance_.costs[c] == 0) {
        chosen.set(c);
        covered |= instance_.coverage[c];
        live.reset(c);
      }
    // Candidate dominance.
    for (std::size_t c = 0; c < num_candidates; ++c) {
      if (!live.test(c)) continue;
      for (std::size_t d = 0; d < num_candidates; ++d) {
        if (d == c || !live.test(d)) continue;
        if (instance_.costs[d] > instance_.costs[c]) continue;
        if (!instance_.coverage[c].is_subset_of(instance_.coverage[d]))
          continue;
        // c is dominated by d unless they are identical twins, in which
        // case keep the smaller index.
        if (instance_.coverage[c] == instance_.coverage[d] &&
            instance_.costs[c] == instance_.costs[d] && d > c)
          continue;
        live.reset(c);
        break;
      }
    }
    // Element dominance: keep the hardest elements only.
    ignored_elements_ = Bitset(instance_.num_elements);
    for (std::size_t e = 0; e < instance_.num_elements; ++e) {
      if (covered.test(e) || ignored_elements_.test(e)) continue;
      for (std::size_t f = 0; f < instance_.num_elements; ++f) {
        if (f == e || covered.test(f) || ignored_elements_.test(f)) continue;
        if (!dominators_[f].is_subset_of(dominators_[e])) continue;
        if (dominators_[f] == dominators_[e] && f > e) continue;
        // dominators(f) ⊆ dominators(e): covering f covers e.
        ignored_elements_.set(e);
        break;
      }
    }

    // Active elements: still to be covered by the search.  Candidate
    // dominance can never strand an element (every removed candidate has a
    // live dominator covering a superset), so an active element with no
    // live dominator means the instance itself is infeasible.
    const std::size_t num_elements = instance_.num_elements;
    for (std::size_t e = 0; e < num_elements; ++e) {
      if (covered.test(e) || ignored_elements_.test(e)) continue;
      Bitset doms = dominators_[e];
      doms &= live;
      if (doms.none()) {
        PG_CHECK(dominators_[e].none(),
                 "dominance pruning removed every dominator");
        ExactResult result;  // infeasible instance
        result.optimal = true;
        result.value = kInfinity;
        result.solution = VertexSet(static_cast<VertexId>(num_candidates));
        return result;
      }
      active_.push_back(e);
    }

    // Greedy incumbent for pruning.
    seed_greedy(covered, live, chosen, cost);

    recurse(covered, live, chosen, cost);

    ExactResult result;
    result.optimal = !aborted_;
    result.nodes_explored = nodes_;
    result.value = best_cost_;
    result.solution = VertexSet(static_cast<VertexId>(num_candidates));
    best_chosen_.for_each([&](std::size_t c) {
      result.solution.insert(static_cast<VertexId>(c));
    });
    return result;
  }

 private:
  bool element_done(const Bitset& covered, std::size_t e) const {
    return covered.test(e) || ignored_elements_.test(e);
  }

  bool all_covered(const Bitset& covered) const {
    for (std::size_t e : active_)
      if (!covered.test(e)) return false;
    return true;
  }

  void seed_greedy(Bitset covered, Bitset live, Bitset chosen, Weight cost) {
    while (!all_covered(covered)) {
      std::size_t best = instance_.coverage.size();
      double best_score = -1.0;
      live.for_each([&](std::size_t c) {
        const std::size_t gain =
            instance_.coverage[c].difference_count(covered);
        if (gain == 0) return;
        const double denom =
            static_cast<double>(std::max<Weight>(instance_.costs[c], 1));
        const double score = static_cast<double>(gain) / denom;
        if (score > best_score) {
          best_score = score;
          best = c;
        }
      });
      PG_CHECK(best < instance_.coverage.size(), "greedy seed stalled");
      chosen.set(best);
      covered |= instance_.coverage[best];
      cost += instance_.costs[best];
      live.reset(best);
    }
    best_cost_ = cost;
    best_chosen_ = chosen;
  }

  bool done() const {
    if (aborted_) return true;
    return target_.has_value() && best_cost_ <= *target_;
  }

  Weight prune_bound() const {
    return target_.has_value() ? std::min<Weight>(best_cost_, *target_ + 1)
                               : best_cost_;
  }

  /// Greedy disjoint-dominator packing lower bound.
  Weight lower_bound(const Bitset& covered, const Bitset& live) const {
    Bitset used(instance_.coverage.size());
    Weight bound = 0;
    for (std::size_t e : active_) {
      if (covered.test(e)) continue;
      Bitset doms = dominators_[e];
      doms &= live;
      if (doms.intersection_count(used) > 0) continue;
      Weight cheapest = kInfinity;
      doms.for_each([&](std::size_t c) {
        cheapest = std::min(cheapest, instance_.costs[c]);
      });
      if (cheapest == kInfinity) return kInfinity;  // dead branch
      bound += cheapest;
      used |= doms;
    }
    return bound;
  }

  void recurse(const Bitset& covered, const Bitset& live, Bitset& chosen,
               Weight cost) {
    if (done()) return;
    cancel::poll();  // watchdog point: once per branch-and-bound node
    if (++nodes_ > budget_) {
      aborted_ = true;
      return;
    }
    if (cost >= prune_bound()) return;
    if (all_covered(covered)) {
      best_cost_ = cost;
      best_chosen_ = chosen;
      return;
    }
    const Weight lb = lower_bound(covered, live);
    if (cost + lb >= prune_bound()) return;

    // Pick the uncovered element with the fewest live dominators.
    std::size_t pick = instance_.num_elements;
    std::size_t pick_count = std::numeric_limits<std::size_t>::max();
    for (std::size_t e : active_) {
      if (covered.test(e)) continue;
      const std::size_t count = dominators_[e].intersection_count(live);
      if (count < pick_count) {
        pick_count = count;
        pick = e;
      }
    }
    PG_CHECK(pick < instance_.num_elements, "no uncovered element to branch on");
    if (pick_count == 0) return;  // infeasible branch

    Bitset doms = dominators_[pick];
    doms &= live;
    std::vector<std::size_t> order;
    doms.for_each([&](std::size_t c) { order.push_back(c); });
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const auto ga = instance_.coverage[a].difference_count(covered);
      const auto gb = instance_.coverage[b].difference_count(covered);
      if (ga != gb) return ga > gb;
      if (instance_.costs[a] != instance_.costs[b])
        return instance_.costs[a] < instance_.costs[b];
      return a < b;
    });

    Bitset branch_live = live;
    for (std::size_t c : order) {
      Bitset next_covered = covered;
      next_covered |= instance_.coverage[c];
      Bitset next_live = branch_live;
      next_live.reset(c);
      chosen.set(c);
      recurse(next_covered, next_live, chosen, cost + instance_.costs[c]);
      chosen.reset(c);
      if (done()) return;
      branch_live.reset(c);  // later branches must not reuse c
    }
  }

  const SetCoverInstance& instance_;
  std::vector<Bitset> dominators_;
  Bitset ignored_elements_;
  std::vector<std::size_t> active_;
  Weight best_cost_ = kInfinity;
  Bitset best_chosen_;
  std::int64_t budget_;
  std::int64_t nodes_ = 0;
  bool aborted_ = false;
  std::optional<Weight> target_;
};

}  // namespace

ExactResult solve_set_cover(const SetCoverInstance& instance,
                            std::int64_t node_budget,
                            std::optional<Weight> decision_target) {
  return SetCoverSolver(instance, node_budget, decision_target).run();
}

SetCoverInstance domination_instance(GraphView g, const VertexWeights* w) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  SetCoverInstance instance;
  instance.num_elements = n;
  instance.coverage.assign(n, Bitset(n));
  instance.costs.assign(n, 1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto& cov = instance.coverage[static_cast<std::size_t>(v)];
    cov.set(static_cast<std::size_t>(v));
    for (VertexId u : g.neighbors(v)) cov.set(static_cast<std::size_t>(u));
    if (w != nullptr) instance.costs[static_cast<std::size_t>(v)] = (*w)[v];
  }
  return instance;
}

ExactResult solve_mds(GraphView g, std::int64_t node_budget) {
  return solve_set_cover(domination_instance(g, nullptr), node_budget);
}

ExactResult solve_mwds(GraphView g, const VertexWeights& w,
                       std::int64_t node_budget) {
  PG_REQUIRE(w.size() == g.num_vertices(), "weights/graph size mismatch");
  return solve_set_cover(domination_instance(g, &w), node_budget);
}

std::optional<bool> has_ds_of_weight_at_most(GraphView g,
                                             const VertexWeights* w, Weight k,
                                             std::int64_t node_budget) {
  if (k < 0) return false;
  const ExactResult result =
      solve_set_cover(domination_instance(g, w), node_budget, k);
  if (result.value <= k) return true;
  if (!result.optimal) return std::nullopt;
  return false;
}

}  // namespace pg::solvers
