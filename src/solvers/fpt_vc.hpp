// Parameterized vertex cover: decides VC(G) <= k with a bounded search
// tree in O*(2^k).  Stands in for the [BBiKS19] parameterized algorithm in
// the Theorem 26 conditional-hardness pipeline, which only invokes it when
// the optimum is known to be small.
#pragma once

#include <optional>

#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace pg::solvers {

/// Returns a vertex cover of size <= k if one exists, nullopt otherwise.
std::optional<graph::VertexSet> fpt_vertex_cover(graph::GraphView g,
                                                 graph::Weight k);

}  // namespace pg::solvers
