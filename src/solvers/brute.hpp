// Exhaustive solvers for tiny graphs (n <= ~20).  Used only by tests to
// cross-check the branch-and-bound solvers.
#pragma once

#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace pg::solvers {

/// Minimum vertex cover size by subset enumeration.  Requires n <= 24.
graph::Weight brute_force_mvc_size(graph::GraphView g);

/// Minimum weighted vertex cover weight by subset enumeration.
graph::Weight brute_force_mwvc_weight(graph::GraphView g,
                                      const graph::VertexWeights& w);

/// Minimum dominating set size by subset enumeration.  Requires n <= 24.
graph::Weight brute_force_mds_size(graph::GraphView g);

/// Minimum weighted dominating set weight by subset enumeration.
graph::Weight brute_force_mwds_weight(graph::GraphView g,
                                      const graph::VertexWeights& w);

}  // namespace pg::solvers
