// Exact minimum (weighted) vertex cover via branch and bound.
//
// Used as ground truth for the approximation-ratio experiments and as the
// leader's local solver in Algorithm 1 (Theorem 1).  The solver is
// budget-limited: callers that need a guaranteed optimum must check
// `result.optimal`.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/cover.hpp"
#include "graph/graph.hpp"

namespace pg::solvers {

struct ExactResult {
  bool optimal = false;           // false when the node budget ran out
  graph::VertexSet solution;      // best feasible solution found
  graph::Weight value = 0;        // its size (unweighted) or weight
  std::int64_t nodes_explored = 0;
};

inline constexpr std::int64_t kDefaultNodeBudget = 50'000'000;

/// Minimum vertex cover (unweighted).
ExactResult solve_mvc(graph::GraphView g,
                      std::int64_t node_budget = kDefaultNodeBudget);

/// Minimum weighted vertex cover.  Weights must be non-negative.
ExactResult solve_mwvc(graph::GraphView g, const graph::VertexWeights& w,
                       std::int64_t node_budget = kDefaultNodeBudget);

/// Decision variant: does G have a vertex cover of size <= k?
/// nullopt if the budget ran out before the question was settled.
std::optional<bool> has_vc_of_size_at_most(
    graph::GraphView g, graph::Weight k,
    std::int64_t node_budget = kDefaultNodeBudget);

}  // namespace pg::solvers
